//! Schedule extraction, validation and display (paper §4, Table 1).
//!
//! A schedule `σ` maps each firing of each actor to its start time
//! (paper Def. 3). The self-timed execution induces the unique
//! throughput-optimal schedule for a given storage distribution (§5–6);
//! [`Schedule::extract`] records it, splits it into the transient and
//! periodic phases, and can extrapolate `σ(a, i)` arbitrarily far into the
//! periodic phase. `buffy` generates such a schedule for every Pareto
//! point (§10).

use crate::engine::{Capacities, Engine, FiringOutcome, SdfState};
use crate::error::AnalysisError;
use crate::throughput::ExplorationLimits;
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};
use core::fmt;
use std::collections::HashMap;

/// One recorded firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Firing {
    /// The firing actor.
    pub actor: ActorId,
    /// Start time (paper: `σ(a, i)`).
    pub start: u64,
    /// Completion time (`start + execution time`).
    pub end: u64,
}

/// Errors found when validating a schedule against the SDF semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// A firing starts while the previous firing of the same actor is
    /// still running (auto-concurrency).
    AutoConcurrency {
        /// The offending actor.
        actor: ActorId,
        /// Start time of the offending firing.
        time: u64,
    },
    /// A firing starts without enough tokens on an input channel.
    MissingTokens {
        /// The offending actor.
        actor: ActorId,
        /// Start time of the offending firing.
        time: u64,
    },
    /// A firing starts without enough free space on an output channel.
    MissingSpace {
        /// The offending actor.
        actor: ActorId,
        /// Start time of the offending firing.
        time: u64,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::AutoConcurrency { actor, time } => {
                write!(
                    f,
                    "actor {actor} fires concurrently with itself at t={time}"
                )
            }
            ScheduleViolation::MissingTokens { actor, time } => {
                write!(
                    f,
                    "actor {actor} starts at t={time} without enough input tokens"
                )
            }
            ScheduleViolation::MissingSpace { actor, time } => {
                write!(
                    f,
                    "actor {actor} starts at t={time} without enough output space"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// A recorded self-timed schedule with its periodic structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    firings: Vec<Firing>,
    /// `(entry_time, period)`; `None` when the execution deadlocks.
    period: Option<(u64, u64)>,
}

impl Schedule {
    /// Extracts the throughput-optimal (self-timed) schedule of `graph`
    /// under `dist`, running until the periodic phase is identified or a
    /// deadlock occurs.
    ///
    /// # Errors
    ///
    /// Propagates engine errors and state limits; see
    /// [`throughput`](crate::throughput::throughput).
    pub fn extract(
        graph: &SdfGraph,
        dist: &StorageDistribution,
        limits: ExplorationLimits,
    ) -> Result<Schedule, AnalysisError> {
        let mut engine = Engine::new(graph, Capacities::from_distribution(dist));
        let mut firings: Vec<Firing> = Vec::new();
        let mut index: HashMap<SdfState, u64> = HashMap::new();

        let record = |firings: &mut Vec<Firing>, graph: &SdfGraph, actor: ActorId, t: u64| {
            let exec = graph.actor(actor).execution_time();
            firings.push(Firing {
                actor,
                start: t,
                end: t + exec,
            });
        };

        let initial = engine.start_initial()?;
        for &(a, _) in &initial.started {
            record(&mut firings, graph, a, 0);
        }
        index.insert(engine.state().clone(), 0);

        let period = loop {
            if engine.time() >= limits.max_steps || index.len() > limits.max_states {
                let kind = if engine.time() >= limits.max_steps {
                    crate::error::LimitKind::Steps
                } else {
                    crate::error::LimitKind::States
                };
                return Err(limits.exceeded(kind, engine.capacities()));
            }
            match engine.step()? {
                FiringOutcome::Deadlock => break None,
                FiringOutcome::Progress(ev) => {
                    for &(a, _) in &ev.started {
                        record(&mut firings, graph, a, engine.time());
                    }
                    if let Some(&entry) = index.get(engine.state()) {
                        break Some((entry, engine.time() - entry));
                    }
                    index.insert(engine.state().clone(), engine.time());
                }
            }
        };

        // Drop firings recorded at or after the recurrence point: they
        // duplicate the start of the periodic pattern.
        if let Some((entry, period_len)) = period {
            firings.retain(|f| f.start < entry + period_len);
        }
        // Stable sort: firings within one time step keep the order in which
        // the engine started them (relevant for zero-execution-time chains).
        firings.sort_by_key(|f| f.start);
        Ok(Schedule { firings, period })
    }

    /// All recorded firings, sorted by start time.
    pub fn firings(&self) -> &[Firing] {
        &self.firings
    }

    /// Duration of the periodic phase, `None` on deadlock.
    pub fn period(&self) -> Option<u64> {
        self.period.map(|(_, p)| p)
    }

    /// Time at which the periodic phase is first entered, `None` on
    /// deadlock.
    pub fn period_entry(&self) -> Option<u64> {
        self.period.map(|(e, _)| e)
    }

    /// Whether the schedule deadlocks (finitely many firings).
    pub fn deadlocked(&self) -> bool {
        self.period.is_none()
    }

    /// Firings of the transient phase (before the periodic phase).
    pub fn transient_firings(&self) -> impl Iterator<Item = &Firing> {
        let entry = self.period.map(|(e, _)| e).unwrap_or(u64::MAX);
        self.firings.iter().filter(move |f| f.start < entry)
    }

    /// The firings of one period of the periodic phase.
    pub fn periodic_firings(&self) -> impl Iterator<Item = &Firing> {
        let (entry, period) = self.period.unwrap_or((u64::MAX, 0));
        self.firings
            .iter()
            .filter(move |f| f.start >= entry && f.start < entry + period)
    }

    /// `σ(a, i)`: the start time of the `i`-th (0-based) firing of `actor`,
    /// extrapolated into the periodic phase as needed.
    ///
    /// Returns `None` when the execution deadlocks before firing `i` (or
    /// the actor never fires periodically).
    pub fn start_of(&self, actor: ActorId, i: u64) -> Option<u64> {
        let recorded: Vec<u64> = self
            .firings
            .iter()
            .filter(|f| f.actor == actor)
            .map(|f| f.start)
            .collect();
        if (i as usize) < recorded.len() {
            return Some(recorded[i as usize]);
        }
        let (entry, period) = self.period?;
        let periodic: Vec<u64> = recorded.iter().copied().filter(|&t| t >= entry).collect();
        if periodic.is_empty() {
            return None;
        }
        let j = i as usize - (recorded.len() - periodic.len());
        let round = (j / periodic.len()) as u64;
        Some(periodic[j % periodic.len()] + round * period)
    }

    /// Throughput of `actor` realized by this schedule: periodic firings
    /// per period (paper Def. 4); zero on deadlock.
    pub fn throughput_of(&self, actor: ActorId) -> Rational {
        let Some((_, period)) = self.period else {
            return Rational::ZERO;
        };
        let n = self.periodic_firings().filter(|f| f.actor == actor).count();
        Rational::new(n as i128, period as i128)
    }

    /// Checks that the recorded firings obey the SDF firing rules under
    /// `dist`: no auto-concurrency, tokens present at start, space present
    /// at start (claim semantics), consumption/production at the end.
    ///
    /// # Errors
    ///
    /// The first [`ScheduleViolation`] found, if any.
    pub fn validate(
        &self,
        graph: &SdfGraph,
        dist: &StorageDistribution,
    ) -> Result<(), ScheduleViolation> {
        // Event kinds at one time instant, in processing order:
        //   0 — End of a positive-duration firing (frees tokens/space);
        //   1 — a zero-duration firing (checked, then applied instantly),
        //       processed in recorded order to honour the engine's fixpoint;
        //   2 — Start of a positive-duration firing.
        // Starts do not mutate token counts (consumption happens at the
        // end), so processing them last is sound.
        #[derive(Clone, Copy)]
        enum Ev {
            End(usize),
            ZeroFiring(usize),
            Start(usize),
        }
        let mut events: Vec<(u64, u8, usize, Ev)> = Vec::with_capacity(self.firings.len() * 2);
        for (i, f) in self.firings.iter().enumerate() {
            if f.start == f.end {
                events.push((f.start, 1, i, Ev::ZeroFiring(i)));
            } else {
                events.push((f.start, 2, i, Ev::Start(i)));
                events.push((f.end, 0, i, Ev::End(i)));
            }
        }
        events.sort_by_key(|&(t, kind, i, _)| (t, kind, i));

        let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
        let mut busy_until: Vec<Option<u64>> = vec![None; graph.num_actors()];

        let check_start = |graph: &SdfGraph,
                           dist: &StorageDistribution,
                           tokens: &[u64],
                           f: &Firing|
         -> Result<(), ScheduleViolation> {
            for &cid in graph.input_channels(f.actor) {
                let ch = graph.channel(cid);
                if tokens[cid.index()] < ch.consumption() {
                    return Err(ScheduleViolation::MissingTokens {
                        actor: f.actor,
                        time: f.start,
                    });
                }
            }
            for &cid in graph.output_channels(f.actor) {
                let ch = graph.channel(cid);
                let free = dist.get(cid).saturating_sub(tokens[cid.index()]);
                if free < ch.production() {
                    return Err(ScheduleViolation::MissingSpace {
                        actor: f.actor,
                        time: f.start,
                    });
                }
            }
            Ok(())
        };
        let apply_end = |graph: &SdfGraph, tokens: &mut [u64], f: &Firing| {
            for &cid in graph.input_channels(f.actor) {
                let ch = graph.channel(cid);
                tokens[cid.index()] = tokens[cid.index()].saturating_sub(ch.consumption());
            }
            for &cid in graph.output_channels(f.actor) {
                let ch = graph.channel(cid);
                tokens[cid.index()] += ch.production();
            }
        };

        for (t, _, _, ev) in events {
            match ev {
                Ev::End(i) => {
                    let f = self.firings[i];
                    apply_end(graph, &mut tokens, &f);
                    if busy_until[f.actor.index()] == Some(f.end) {
                        busy_until[f.actor.index()] = None;
                    }
                }
                Ev::ZeroFiring(i) => {
                    let f = self.firings[i];
                    if busy_until[f.actor.index()].is_some() {
                        return Err(ScheduleViolation::AutoConcurrency {
                            actor: f.actor,
                            time: t,
                        });
                    }
                    check_start(graph, dist, &tokens, &f)?;
                    apply_end(graph, &mut tokens, &f);
                }
                Ev::Start(i) => {
                    let f = self.firings[i];
                    if busy_until[f.actor.index()].is_some() {
                        return Err(ScheduleViolation::AutoConcurrency {
                            actor: f.actor,
                            time: t,
                        });
                    }
                    check_start(graph, dist, &tokens, &f)?;
                    busy_until[f.actor.index()] = Some(f.end);
                }
            }
        }
        Ok(())
    }

    /// Renders the schedule as an ASCII Gantt chart (one row per actor,
    /// `X` at firing start, `-` while the firing continues), covering time
    /// steps `0..until`. Reproduces the content of the paper's Table 1.
    pub fn gantt(&self, graph: &SdfGraph, until: u64) -> String {
        let mut out = String::new();
        let width = 3usize;
        let name_w = graph
            .actors()
            .map(|(_, a)| a.name().len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!("{:name_w$} |", "t"));
        for t in 0..until {
            out.push_str(&format!("{t:>width$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(name_w + 2 + width * until as usize));
        out.push('\n');
        for (aid, actor) in graph.actors() {
            out.push_str(&format!("{:name_w$} |", actor.name()));
            let mut cells = vec!["".to_string(); until as usize];
            let mut draw = |start: u64, end: u64| {
                for t in start..end.max(start + 1) {
                    if t < until {
                        cells[t as usize] = if t == start { "X" } else { "-" }.into();
                    }
                }
            };
            for f in &self.firings {
                if f.actor != aid {
                    continue;
                }
                draw(f.start, f.end);
                // Repeat periodic firings up to the display horizon.
                if let Some((entry, period)) = self.period {
                    if f.start >= entry && period > 0 {
                        let mut s = f.start + period;
                        while s < until {
                            draw(s, s + (f.end - f.start));
                            s += period;
                        }
                    }
                }
            }
            for c in &cells {
                out.push_str(&format!("{c:>width$}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn extract(g: &SdfGraph, caps: &[u64]) -> Schedule {
        Schedule::extract(
            g,
            &StorageDistribution::from_capacities(caps.to_vec()),
            ExplorationLimits::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_schedule_structure() {
        let g = example();
        let s = extract(&g, &[4, 2]);
        assert!(!s.deadlocked());
        assert_eq!(s.period(), Some(7));
        assert_eq!(s.period_entry(), Some(2));
        let c = g.actor_by_name("c").unwrap();
        assert_eq!(s.throughput_of(c), Rational::new(1, 7));
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(s.throughput_of(a), Rational::new(3, 7));
        // Transient phase: a fires at t=0 and t=1 (paper: time steps 1–2
        // belong to the transient phase).
        let transient: Vec<_> = s.transient_firings().collect();
        assert_eq!(transient.len(), 2);
        assert!(transient.iter().all(|f| f.actor == a));
    }

    #[test]
    fn sigma_extrapolates_periodically() {
        let g = example();
        let s = extract(&g, &[4, 2]);
        let c = g.actor_by_name("c").unwrap();
        let first = s.start_of(c, 0).unwrap();
        let second = s.start_of(c, 1).unwrap();
        let tenth = s.start_of(c, 9).unwrap();
        assert_eq!(second - first, 7);
        assert_eq!(tenth, first + 9 * 7);
        // a fires 3 times per period.
        let a = g.actor_by_name("a").unwrap();
        let far = s.start_of(a, 100).unwrap();
        let farther = s.start_of(a, 103).unwrap();
        assert_eq!(farther - far, 7);
    }

    #[test]
    fn deadlocked_schedule() {
        let g = example();
        let s = extract(&g, &[4, 1]);
        assert!(s.deadlocked());
        assert_eq!(s.period(), None);
        let c = g.actor_by_name("c").unwrap();
        assert_eq!(s.throughput_of(c), Rational::ZERO);
        assert_eq!(s.start_of(c, 0), None);
        // a still fired a few times before the deadlock.
        let a = g.actor_by_name("a").unwrap();
        assert!(s.start_of(a, 0).is_some());
    }

    #[test]
    fn extracted_schedules_validate() {
        let g = example();
        for caps in [[4u64, 2], [5, 2], [6, 2], [8, 2], [6, 4], [10, 10]] {
            let d = StorageDistribution::from_capacities(caps.to_vec());
            let s = Schedule::extract(&g, &d, ExplorationLimits::default()).unwrap();
            s.validate(&g, &d).unwrap();
        }
    }

    #[test]
    fn validation_catches_violations() {
        let g = example();
        let a = g.actor_by_name("a").unwrap();
        let b = g.actor_by_name("b").unwrap();
        let d = StorageDistribution::from_capacities(vec![4, 2]);

        // b starting at t=0 has no tokens.
        let s = Schedule {
            firings: vec![Firing {
                actor: b,
                start: 0,
                end: 2,
            }],
            period: None,
        };
        assert!(matches!(
            s.validate(&g, &d),
            Err(ScheduleViolation::MissingTokens { .. })
        ));

        // Two overlapping firings of a.
        let s = Schedule {
            firings: vec![
                Firing {
                    actor: a,
                    start: 0,
                    end: 1,
                },
                Firing {
                    actor: a,
                    start: 0,
                    end: 1,
                },
            ],
            period: None,
        };
        assert!(matches!(
            s.validate(&g, &d),
            Err(ScheduleViolation::AutoConcurrency { .. })
        ));

        // Three a-firings back to back overflow α (capacity 4 < 6).
        let s = Schedule {
            firings: vec![
                Firing {
                    actor: a,
                    start: 0,
                    end: 1,
                },
                Firing {
                    actor: a,
                    start: 1,
                    end: 2,
                },
                Firing {
                    actor: a,
                    start: 2,
                    end: 3,
                },
            ],
            period: None,
        };
        assert!(matches!(
            s.validate(&g, &d),
            Err(ScheduleViolation::MissingSpace { .. })
        ));
    }

    #[test]
    fn gantt_renders() {
        let g = example();
        let s = extract(&g, &[4, 2]);
        let chart = s.gantt(&g, 16);
        assert!(chart.contains("a"));
        assert!(chart.contains("X"));
        assert!(chart.contains("-"));
        assert_eq!(chart.lines().count(), 2 + g.num_actors());
    }

    #[test]
    fn violation_messages() {
        let a = ActorId::new(0);
        for v in [
            ScheduleViolation::AutoConcurrency { actor: a, time: 3 },
            ScheduleViolation::MissingTokens { actor: a, time: 3 },
            ScheduleViolation::MissingSpace { actor: a, time: 3 },
        ] {
            assert!(v.to_string().contains("t=3"));
        }
    }
}
