//! Shared-memory storage model.
//!
//! The paper's §3 distinguishes two ways of realizing channel storage: a
//! *separate memory per channel* (the model the paper and this crate's
//! exploration use — conservative, right for multi-processor systems) and
//! a *memory shared between all channels* (Murthy et al. \[MB00\] — natural
//! for single processors), where the requirement is the maximum number of
//! tokens alive *simultaneously*, and hybrids of the two.
//!
//! This module measures the shared-memory requirement of the self-timed
//! execution under a given per-channel distribution, enabling the
//! comparison the paper alludes to: the shared peak is never larger than
//! the distribution size, and the gap quantifies how much memory a
//! single-processor implementation could save.

use crate::engine::{Capacities, Engine, FiringOutcome};
use crate::error::AnalysisError;
use crate::throughput::ExplorationLimits;
use buffy_graph::{SdfGraph, StorageDistribution};
use std::collections::HashMap;

/// Shared-memory usage of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemoryReport {
    /// Maximum total number of tokens stored across all channels at any
    /// time instant, over the transient and one full period (or up to the
    /// deadlock).
    pub peak_tokens: u64,
    /// Per-channel peak occupancies summed up — the capacity a *separate*
    /// memory implementation would need to not constrain this execution
    /// further.
    pub sum_of_channel_peaks: u64,
    /// Whether the execution deadlocks.
    pub deadlocked: bool,
}

/// Measures the shared-memory peak of the self-timed execution of `graph`
/// under the per-channel capacities `dist`.
///
/// # Errors
///
/// Same as [`crate::throughput::throughput`].
///
/// # Examples
///
/// ```
/// use buffy_analysis::{shared_memory_peak, ExplorationLimits};
/// use buffy_graph::{SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let dist = StorageDistribution::from_capacities(vec![4, 2]);
/// let r = shared_memory_peak(&g, &dist, ExplorationLimits::default())?;
/// // A shared memory needs at most the distribution size …
/// assert!(r.peak_tokens <= dist.size());
/// // … and here strictly less: α and β are never simultaneously full.
/// assert!(r.peak_tokens < dist.size());
/// # Ok(())
/// # }
/// ```
pub fn shared_memory_peak(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    limits: ExplorationLimits,
) -> Result<SharedMemoryReport, AnalysisError> {
    let mut engine = Engine::new(graph, Capacities::from_distribution(dist));
    engine.start_initial()?;

    let mut index: HashMap<crate::engine::SdfState, u64> = HashMap::new();
    index.insert(engine.state().clone(), 0);

    let mut peak: u64 = engine.state().tokens.iter().sum();
    let mut channel_peaks: Vec<u64> = engine.state().tokens.clone();
    let mut deadlocked = false;

    loop {
        if engine.time() >= limits.max_steps || index.len() > limits.max_states {
            let kind = if engine.time() >= limits.max_steps {
                crate::error::LimitKind::Steps
            } else {
                crate::error::LimitKind::States
            };
            return Err(limits.exceeded(kind, engine.capacities()));
        }
        match engine.step()? {
            FiringOutcome::Deadlock => {
                deadlocked = true;
                break;
            }
            FiringOutcome::Progress(_) => {
                let total: u64 = engine.state().tokens.iter().sum();
                peak = peak.max(total);
                for (p, &t) in channel_peaks.iter_mut().zip(&engine.state().tokens) {
                    *p = (*p).max(t);
                }
                if index
                    .insert(engine.state().clone(), engine.time())
                    .is_some()
                {
                    break; // periodic phase fully covered
                }
            }
        }
    }

    Ok(SharedMemoryReport {
        peak_tokens: peak,
        sum_of_channel_peaks: channel_peaks.iter().sum(),
        deadlocked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn peak_bounded_by_distribution_size() {
        let g = example();
        for caps in [[4u64, 2], [6, 2], [7, 3], [10, 10]] {
            let d = StorageDistribution::from_capacities(caps.to_vec());
            let r = shared_memory_peak(&g, &d, ExplorationLimits::default()).unwrap();
            assert!(r.peak_tokens <= d.size(), "γ = {d}");
            assert!(r.peak_tokens <= r.sum_of_channel_peaks);
            assert!(r.sum_of_channel_peaks <= d.size());
            assert!(!r.deadlocked);
        }
    }

    #[test]
    fn shared_model_needs_less_on_example() {
        // α (4) and β (2) are never simultaneously full under ⟨4,2⟩: the
        // shared model saves memory, as §3 suggests for single processors.
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let r = shared_memory_peak(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(r.peak_tokens < 6, "peak {}", r.peak_tokens);
    }

    #[test]
    fn per_channel_peaks_are_reached() {
        // Under ⟨4,2⟩, α actually reaches its capacity (the source blocks
        // on it), so the sum of channel peaks equals 4 + its β peak.
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let r = shared_memory_peak(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(r.sum_of_channel_peaks >= 4);
    }

    #[test]
    fn deadlocked_execution_reports_prefix_peak() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 1]);
        let r = shared_memory_peak(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(r.deadlocked);
        assert!(r.peak_tokens >= 4); // α fills before the deadlock
    }

    #[test]
    fn initial_tokens_counted() {
        let mut b = SdfGraph::builder("init");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 1, y, 1, 3).unwrap();
        let g = b.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![4]);
        let r = shared_memory_peak(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(r.peak_tokens >= 3);
    }
}
