//! Timed self-timed execution of CSDF graphs.
//!
//! The phased operational semantics live in the unified kernel:
//! [`buffy_analysis::DataflowEngine`] executes any
//! [`DataflowSemantics`](buffy_analysis::DataflowSemantics) model, and
//! [`CsdfGraph`] implements that trait. This module keeps the CSDF-typed
//! surface — [`CsdfEngine`] and the historical type names — as thin
//! wrappers, so call sites keep reading in CSDF vocabulary: an actor in
//! phase `k` may start a firing when it is idle, every input channel holds
//! at least `consumption[k]` tokens, and every output channel has room for
//! `production[k]` tokens (claimed at the start); tokens move at the end
//! of the firing and the actor advances to phase `(k+1) mod n`. Phases
//! with rate 0 neither require tokens nor space on that channel.

use crate::model::{CsdfError, CsdfGraph};
use buffy_analysis::{Capacities, DataflowEngine, DataflowState, FiringEvents, FiringOutcome};
use buffy_graph::{ActorId, StorageDistribution};

/// A timed CSDF state: the kernel's [`DataflowState`] (remaining firing
/// times, current phases, channel fills). Single-phase graphs produce
/// states identical to the SDF analysis, hashing included — the basis of
/// the byte-identical SDF/CSDF cross-validation.
pub type CsdfState = DataflowState;

/// What happened in one step: the kernel's [`FiringEvents`], carrying
/// `(actor, phase)` pairs for completed and started firings.
pub type CsdfStepEvents = FiringEvents;

/// Outcome of one step: the kernel's [`FiringOutcome`].
pub type CsdfStepOutcome = FiringOutcome;

/// Deterministic ASAP executor for CSDF graphs under per-channel
/// capacities: the CSDF-typed wrapper of the kernel's [`DataflowEngine`].
#[derive(Debug, Clone)]
pub struct CsdfEngine<'g> {
    inner: DataflowEngine<'g, CsdfGraph>,
}

impl<'g> CsdfEngine<'g> {
    /// Creates an engine at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `dist` does not cover exactly the graph's channels.
    pub fn new(graph: &'g CsdfGraph, dist: &StorageDistribution) -> CsdfEngine<'g> {
        CsdfEngine {
            inner: DataflowEngine::new(graph, Capacities::from_distribution(dist)),
        }
    }

    /// The graph being executed.
    pub fn graph(&self) -> &'g CsdfGraph {
        self.inner.model()
    }

    /// The current state.
    pub fn state(&self) -> &CsdfState {
        self.inner.state()
    }

    /// The current time.
    pub fn time(&self) -> u64 {
        self.inner.time()
    }

    /// Whether `actor` can start its current-phase firing now.
    pub fn is_enabled(&self, actor: ActorId) -> bool {
        self.inner.is_enabled(actor)
    }

    /// Performs the initial start phase at time 0.
    ///
    /// # Errors
    ///
    /// [`CsdfError::ZeroTimeLivelock`] when zero-time phases never settle.
    pub fn start_initial(&mut self) -> Result<CsdfStepEvents, CsdfError> {
        self.inner.start_initial().map_err(CsdfError::from)
    }

    /// Advances one time step.
    ///
    /// # Errors
    ///
    /// [`CsdfError::ZeroTimeLivelock`] when zero-time phases never settle.
    ///
    /// # Panics
    ///
    /// Panics if [`start_initial`](Self::start_initial) was not called.
    pub fn step(&mut self) -> Result<CsdfStepOutcome, CsdfError> {
        self.inner.step().map_err(CsdfError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-phase producer p: phase 0 produces 2 tokens (1 step), phase 1
    /// produces none (1 step). Consumer c consumes 1 per firing.
    fn updown() -> CsdfGraph {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn phases_cycle_and_rates_apply() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        e.start_initial().unwrap();
        assert_eq!(e.state().phase, vec![0, 0]);
        e.step().unwrap(); // p completes phase 0: +2 tokens; p enters phase 1; c starts
        assert_eq!(e.state().tokens, vec![2]);
        assert_eq!(e.state().phase[0], 1);
        e.step().unwrap(); // p completes phase 1 (no production); c completes (−1)
        assert_eq!(e.state().tokens, vec![1]);
        assert_eq!(e.state().phase[0], 0);
    }

    #[test]
    fn zero_rate_phase_needs_no_space() {
        // Capacity 2: phase 0 needs 2 free; phase 1 needs none, so it can
        // run even when the channel is full.
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![2]));
        e.start_initial().unwrap();
        e.step().unwrap(); // tokens 2 (full); p starts phase 1 regardless
        assert_eq!(e.state().tokens, vec![2]);
        assert!(
            e.state().act_clk[0] > 0,
            "phase 1 must start despite full channel"
        );
    }

    #[test]
    fn deadlock_when_capacity_below_burst() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![1]));
        e.start_initial().unwrap();
        // p's phase 0 needs 2 free spaces; c has no tokens: deadlock.
        assert_eq!(e.step().unwrap(), CsdfStepOutcome::Deadlock);
    }

    #[test]
    fn zero_time_phase_completes_instantly() {
        let mut b = CsdfGraph::builder("z");
        let p = b.actor("p", vec![2, 0]); // second phase instantaneous
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![1, 1], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        e.start_initial().unwrap();
        e.step().unwrap();
        e.step().unwrap(); // phase 0 completes (+1); phase 1 fires instantly (+1)
        assert_eq!(e.state().tokens[0] + 1, 3); // one consumed start by c? tokens: 2 produced, c started but consumes at end
        assert_eq!(e.state().phase[0], 0); // back to phase 0
    }

    #[test]
    fn events_carry_phases() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        let ev = e.start_initial().unwrap();
        assert_eq!(ev.started, vec![(ActorId::new(0), 0)]);
        if let CsdfStepOutcome::Progress(ev) = e.step().unwrap() {
            assert!(ev.completed.contains(&(ActorId::new(0), 0)));
            assert!(ev.started.contains(&(ActorId::new(0), 1)));
        } else {
            panic!("expected progress");
        }
    }

    #[test]
    fn wrapper_reports_graph_and_enabledness() {
        let g = updown();
        let e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        assert_eq!(e.graph().name(), "updown");
        assert!(e.is_enabled(ActorId::new(0)));
        assert!(!e.is_enabled(ActorId::new(1))); // no tokens yet
        assert_eq!(e.time(), 0);
    }
}
