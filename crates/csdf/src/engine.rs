//! Timed self-timed execution of CSDF graphs.
//!
//! The semantics extend the SDF engine phase-wise: an actor in phase `k`
//! may start a firing when it is idle, every input channel holds at least
//! `consumption[k]` tokens, and every output channel has room for
//! `production[k]` tokens (claimed at the start); tokens move at the end
//! of the firing and the actor advances to phase `(k+1) mod n`. Phases
//! with rate 0 neither require tokens nor space on that channel.

use crate::model::{CsdfError, CsdfGraph};
use buffy_graph::{ActorId, StorageDistribution};

/// A timed CSDF state: remaining firing time, current phase, and channel
/// fills.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CsdfState {
    /// Remaining time of the current firing per actor (0 = idle).
    pub act_clk: Vec<u64>,
    /// Current phase index per actor.
    pub phase: Vec<u32>,
    /// Tokens per channel.
    pub tokens: Vec<u64>,
}

impl CsdfState {
    /// Whether no actor is firing.
    pub fn all_idle(&self) -> bool {
        self.act_clk.iter().all(|&t| t == 0)
    }
}

/// What happened in one step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsdfStepEvents {
    /// `(actor, phase)` pairs that completed a firing this step.
    pub completed: Vec<(ActorId, u32)>,
    /// `(actor, phase)` pairs that started a firing this step.
    pub started: Vec<(ActorId, u32)>,
}

/// Outcome of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsdfStepOutcome {
    /// Time advanced.
    Progress(CsdfStepEvents),
    /// Nothing can ever fire again.
    Deadlock,
}

const ZERO_TIME_FIRING_CAP: u64 = 1 << 22;

/// Deterministic ASAP executor for CSDF graphs under per-channel
/// capacities.
#[derive(Debug, Clone)]
pub struct CsdfEngine<'g> {
    graph: &'g CsdfGraph,
    caps: Vec<u64>,
    state: CsdfState,
    time: u64,
    started: bool,
}

impl<'g> CsdfEngine<'g> {
    /// Creates an engine at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `dist` does not cover exactly the graph's channels.
    pub fn new(graph: &'g CsdfGraph, dist: &StorageDistribution) -> CsdfEngine<'g> {
        assert_eq!(dist.len(), graph.num_channels());
        CsdfEngine {
            graph,
            caps: dist.as_slice().to_vec(),
            state: CsdfState {
                act_clk: vec![0; graph.num_actors()],
                phase: vec![0; graph.num_actors()],
                tokens: graph.channels().map(|(_, c)| c.initial_tokens()).collect(),
            },
            time: 0,
            started: false,
        }
    }

    /// The current state.
    pub fn state(&self) -> &CsdfState {
        &self.state
    }

    /// The current time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether `actor` can start its current-phase firing now.
    pub fn is_enabled(&self, actor: ActorId) -> bool {
        if self.state.act_clk[actor.index()] > 0 {
            return false;
        }
        let k = self.state.phase[actor.index()] as usize;
        for &cid in self.graph.input_channels(actor) {
            let need = self.graph.channel(cid).consumption()[k];
            if self.state.tokens[cid.index()] < need {
                return false;
            }
        }
        for &cid in self.graph.output_channels(actor) {
            let produce = self.graph.channel(cid).production()[k];
            let free = self.caps[cid.index()].saturating_sub(self.state.tokens[cid.index()]);
            if free < produce {
                return false;
            }
        }
        true
    }

    fn any_enabled(&self) -> bool {
        self.graph.actor_ids().any(|a| self.is_enabled(a))
    }

    /// Applies end-of-firing effects and advances the phase.
    fn complete(&mut self, actor: ActorId) {
        let k = self.state.phase[actor.index()] as usize;
        for &cid in self.graph.input_channels(actor) {
            let need = self.graph.channel(cid).consumption()[k];
            debug_assert!(self.state.tokens[cid.index()] >= need);
            self.state.tokens[cid.index()] -= need;
        }
        for &cid in self.graph.output_channels(actor) {
            let produce = self.graph.channel(cid).production()[k];
            self.state.tokens[cid.index()] += produce;
            // A channel may start over-full (initial tokens beyond the
            // capacity); only actual productions must have claimed space.
            debug_assert!(produce == 0 || self.state.tokens[cid.index()] <= self.caps[cid.index()]);
        }
        let n = self.graph.actor(actor).num_phases() as u32;
        self.state.phase[actor.index()] = (self.state.phase[actor.index()] + 1) % n;
    }

    fn start_enabled(&mut self, events: &mut CsdfStepEvents) -> Result<(), CsdfError> {
        let mut zero_firings = 0u64;
        loop {
            let mut changed = false;
            for i in 0..self.graph.num_actors() {
                let actor = ActorId::new(i);
                loop {
                    if !self.is_enabled(actor) {
                        break;
                    }
                    let k = self.state.phase[i];
                    let exec = self.graph.actor(actor).phase_times()[k as usize];
                    if exec > 0 {
                        self.state.act_clk[i] = exec;
                        events.started.push((actor, k));
                        changed = true;
                        break;
                    }
                    // Zero-time phase: fires instantly, may repeat.
                    events.started.push((actor, k));
                    self.complete(actor);
                    events.completed.push((actor, k));
                    changed = true;
                    zero_firings += 1;
                    if zero_firings > ZERO_TIME_FIRING_CAP {
                        return Err(CsdfError::ZeroTimeLivelock);
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Performs the initial start phase at time 0.
    ///
    /// # Errors
    ///
    /// [`CsdfError::ZeroTimeLivelock`] when zero-time phases never settle.
    pub fn start_initial(&mut self) -> Result<CsdfStepEvents, CsdfError> {
        assert!(!self.started, "start_initial must be called exactly once");
        self.started = true;
        let mut ev = CsdfStepEvents::default();
        self.start_enabled(&mut ev)?;
        Ok(ev)
    }

    /// Advances one time step.
    ///
    /// # Errors
    ///
    /// [`CsdfError::ZeroTimeLivelock`] when zero-time phases never settle.
    ///
    /// # Panics
    ///
    /// Panics if [`start_initial`](Self::start_initial) was not called.
    pub fn step(&mut self) -> Result<CsdfStepOutcome, CsdfError> {
        assert!(self.started, "call start_initial before step");
        if self.state.all_idle() && !self.any_enabled() {
            return Ok(CsdfStepOutcome::Deadlock);
        }
        self.time += 1;
        let mut events = CsdfStepEvents::default();
        for i in 0..self.state.act_clk.len() {
            if self.state.act_clk[i] > 0 {
                self.state.act_clk[i] -= 1;
                if self.state.act_clk[i] == 0 {
                    let k = self.state.phase[i];
                    self.complete(ActorId::new(i));
                    events.completed.push((ActorId::new(i), k));
                }
            }
        }
        self.start_enabled(&mut events)?;
        Ok(CsdfStepOutcome::Progress(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-phase producer p: phase 0 produces 2 tokens (1 step), phase 1
    /// produces none (1 step). Consumer c consumes 1 per firing.
    fn updown() -> CsdfGraph {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn phases_cycle_and_rates_apply() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        e.start_initial().unwrap();
        assert_eq!(e.state().phase, vec![0, 0]);
        e.step().unwrap(); // p completes phase 0: +2 tokens; p enters phase 1; c starts
        assert_eq!(e.state().tokens, vec![2]);
        assert_eq!(e.state().phase[0], 1);
        e.step().unwrap(); // p completes phase 1 (no production); c completes (−1)
        assert_eq!(e.state().tokens, vec![1]);
        assert_eq!(e.state().phase[0], 0);
    }

    #[test]
    fn zero_rate_phase_needs_no_space() {
        // Capacity 2: phase 0 needs 2 free; phase 1 needs none, so it can
        // run even when the channel is full.
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![2]));
        e.start_initial().unwrap();
        e.step().unwrap(); // tokens 2 (full); p starts phase 1 regardless
        assert_eq!(e.state().tokens, vec![2]);
        assert!(
            e.state().act_clk[0] > 0,
            "phase 1 must start despite full channel"
        );
    }

    #[test]
    fn deadlock_when_capacity_below_burst() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![1]));
        e.start_initial().unwrap();
        // p's phase 0 needs 2 free spaces; c has no tokens: deadlock.
        assert_eq!(e.step().unwrap(), CsdfStepOutcome::Deadlock);
    }

    #[test]
    fn zero_time_phase_completes_instantly() {
        let mut b = CsdfGraph::builder("z");
        let p = b.actor("p", vec![2, 0]); // second phase instantaneous
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![1, 1], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        e.start_initial().unwrap();
        e.step().unwrap();
        e.step().unwrap(); // phase 0 completes (+1); phase 1 fires instantly (+1)
        assert_eq!(e.state().tokens[0] + 1, 3); // one consumed start by c? tokens: 2 produced, c started but consumes at end
        assert_eq!(e.state().phase[0], 0); // back to phase 0
    }

    #[test]
    fn events_carry_phases() {
        let g = updown();
        let mut e = CsdfEngine::new(&g, &StorageDistribution::from_capacities(vec![4]));
        let ev = e.start_initial().unwrap();
        assert_eq!(ev.started, vec![(ActorId::new(0), 0)]);
        if let CsdfStepOutcome::Progress(ev) = e.step().unwrap() {
            assert!(ev.completed.contains(&(ActorId::new(0), 0)));
            assert!(ev.started.contains(&(ActorId::new(0), 1)));
        } else {
            panic!("expected progress");
        }
    }
}
