//! CSDF → HSDF expansion and maximal throughput.
//!
//! Like the SDF case (Bilsen et al.), a consistent CSDF graph expands into
//! a homogeneous graph with one node per *firing* in an iteration
//! (`q(a) · phases(a)` nodes per actor), firing-order rings serializing
//! each actor, and token-level dependency edges. The maximum cycle ratio
//! of the expansion (delay = execution time of the producing phase) gives
//! the iteration period and hence the maximal achievable throughput over
//! all storage distributions — the upper bound the buffer/throughput
//! exploration prunes against.

use crate::model::{CsdfError, CsdfGraph};
use crate::repetition::CsdfRepetitionVector;
use buffy_analysis::{max_cycle_ratio, AnalysisError, RatioEdge, RatioGraph};
use buffy_graph::{ActorId, Rational};
use std::collections::HashMap;

/// Builds the cycle-ratio instance of the homogeneous expansion of
/// `graph` under repetition vector `q`.
pub fn csdf_ratio_graph(graph: &CsdfGraph, q: &CsdfRepetitionVector) -> RatioGraph {
    // Node numbering: firings of actor a occupy a contiguous block.
    let mut base = vec![0usize; graph.num_actors()];
    let mut num_nodes = 0usize;
    let mut firings_of = vec![0u64; graph.num_actors()];
    for (aid, actor) in graph.actors() {
        base[aid.index()] = num_nodes;
        let f = q.cycles(aid) * actor.num_phases() as u64;
        firings_of[aid.index()] = f;
        num_nodes += f as usize;
    }
    let phase_time = |a: ActorId, firing: u64| {
        let p = graph.actor(a).num_phases() as u64;
        graph.actor(a).phase_times()[(firing % p) as usize]
    };

    let mut edges: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
    let mut add = |from: usize, to: usize, weight: u64, tokens: u64| {
        edges
            .entry((from, to))
            .and_modify(|e| {
                if tokens < e.1 {
                    *e = (weight, tokens);
                }
            })
            .or_insert((weight, tokens));
    };

    // Firing-order rings.
    for aid in graph.actor_ids() {
        let f = firings_of[aid.index()];
        let b = base[aid.index()];
        for i in 0..f {
            let next = (i + 1) % f;
            add(
                b + i as usize,
                b + next as usize,
                phase_time(aid, i),
                u64::from(next == 0),
            );
        }
    }

    // Token-level dependencies.
    for (_, ch) in graph.channels() {
        let src = ch.source();
        let dst = ch.target();
        let fa = firings_of[src.index()];
        let fb = firings_of[dst.index()];
        let pa = graph.actor(src).num_phases() as u64;
        let pb = graph.actor(dst).num_phases() as u64;
        // Cumulative consumption over one iteration of the target.
        let mut cum_c = Vec::with_capacity(fb as usize + 1);
        cum_c.push(0u64);
        for m in 0..fb {
            cum_c.push(cum_c[m as usize] + ch.consumption()[(m % pb) as usize]);
        }
        let per_iter_c = cum_c[fb as usize];
        debug_assert!(per_iter_c > 0);

        let d = ch.initial_tokens();
        let mut produced_before = 0u64;
        for i in 0..fa {
            let produced = ch.production()[(i % pa) as usize];
            for k in 1..=produced {
                let t = d + produced_before + k; // 1-based consumption index
                let full_iters = (t - 1) / per_iter_c;
                let rem = t - full_iters * per_iter_c;
                // Smallest m with cum_c[m+1] ≥ rem.
                let m = cum_c.partition_point(|&c| c < rem) - 1;
                add(
                    base[src.index()] + i as usize,
                    base[dst.index()] + m,
                    phase_time(src, i),
                    full_iters,
                );
            }
            produced_before += produced;
        }
    }

    RatioGraph {
        num_nodes,
        edges: edges
            .into_iter()
            .map(|((from, to), (weight, tokens))| RatioEdge {
                from,
                to,
                weight,
                tokens,
            })
            .collect(),
    }
}

/// The maximal achievable throughput of `observed` (in phase firings per
/// time unit) over all storage distributions.
///
/// # Errors
///
/// - [`CsdfError::Inconsistent`] for inconsistent graphs;
/// - [`CsdfError::ZeroTimeLivelock`] when every critical cycle has zero
///   delay (unbounded throughput);
/// - [`CsdfError::Inconsistent`] (reported on the graph) when a token-free
///   cycle deadlocks the graph.
pub fn csdf_maximal_throughput(
    graph: &CsdfGraph,
    observed: ActorId,
) -> Result<Rational, CsdfError> {
    let q = CsdfRepetitionVector::compute(graph)?;
    let rg = csdf_ratio_graph(graph, &q);
    let lambda = match max_cycle_ratio(&rg) {
        Ok(Some(l)) => l,
        Ok(None) => unreachable!("firing-order rings create cycles"),
        Err(AnalysisError::NotLive) => {
            return Err(CsdfError::Inconsistent {
                channel: "token-free cycle".to_string(),
            })
        }
        Err(other) => {
            return Err(CsdfError::from(other));
        }
    };
    if lambda.is_zero() {
        return Err(CsdfError::ZeroTimeLivelock);
    }
    Ok(Rational::from(q.firings(graph, observed)) / lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_analysis::maximal_throughput as sdf_maximal_throughput;
    use buffy_graph::SdfGraph;

    #[test]
    fn matches_sdf_on_single_phase_embedding() {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        for name in ["a", "b", "c"] {
            let s = sdf_maximal_throughput(&sdf, sdf.actor_by_name(name).unwrap()).unwrap();
            let cs = csdf_maximal_throughput(&csdf, csdf.actor_by_name(name).unwrap()).unwrap();
            assert_eq!(s, cs, "actor {name}");
        }
    }

    #[test]
    fn bursty_producer_bound() {
        // p: phases (1,1), produce (2,0); c: 1 phase, consume 1, exec 1.
        // q = (1, 2): per iteration p runs 2 time units producing 2 tokens,
        // so c can fire at most 1 per time unit: thr(c) ≤ 1 — and the ring
        // of p (2 firings, 2 time units, 1 token) gives λ = 2, thr(c) =
        // q_c·phases / λ = 2/2 = 1.
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(csdf_maximal_throughput(&g, c).unwrap(), Rational::ONE);
        // …and the simulation with generous buffers reaches it.
        let r = crate::throughput::csdf_throughput(
            &g,
            &buffy_graph::StorageDistribution::from_capacities(vec![8]),
            c,
            crate::throughput::CsdfLimits::default(),
        )
        .unwrap();
        assert_eq!(r.throughput, Rational::ONE);
    }

    #[test]
    fn phase_heavy_actor_limits_throughput() {
        // One actor, three phases with times (1, 2, 3): its own ring
        // bounds it at 3 firings per 6 time units.
        let mut b = CsdfGraph::builder("solo");
        let x = b.actor("x", vec![1, 2, 3]);
        b.channel("s", x, vec![1, 1, 1], x, vec![1, 1, 1], 1)
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(csdf_maximal_throughput(&g, x).unwrap(), Rational::new(1, 2));
    }

    #[test]
    fn token_free_cycle_rejected() {
        let mut b = CsdfGraph::builder("dead");
        let x = b.actor("x", vec![1]);
        let y = b.actor("y", vec![1]);
        b.channel("f", x, vec![1], y, vec![1], 0).unwrap();
        b.channel("r", y, vec![1], x, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        assert!(csdf_maximal_throughput(&g, x).is_err());
    }

    #[test]
    fn simulation_never_exceeds_the_bound() {
        let mut b = CsdfGraph::builder("mix");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![2, 1]);
        b.channel("d", p, vec![3, 1], c, vec![2, 2], 0).unwrap();
        let g = b.build().unwrap();
        let c_id = g.actor_by_name("c").unwrap();
        let bound = csdf_maximal_throughput(&g, c_id).unwrap();
        for cap in 4..14u64 {
            let r = crate::throughput::csdf_throughput(
                &g,
                &buffy_graph::StorageDistribution::from_capacities(vec![cap]),
                c_id,
                crate::throughput::CsdfLimits::default(),
            )
            .unwrap();
            assert!(
                r.throughput <= bound,
                "cap {cap}: {} > {bound}",
                r.throughput
            );
        }
    }
}
