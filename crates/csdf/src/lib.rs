//! # buffy-csdf
//!
//! Cyclo-Static Dataflow (CSDF) extension of **buffy-rs**.
//!
//! The paper's conclusions (§12) call for generalizing the exploration "to
//! more general dataflow models"; the authors' own follow-up work added
//! CSDF support to SDF3. This crate ports the machinery to the phased
//! model:
//!
//! - [`CsdfGraph`]: actors with cyclic phase sequences, per-phase
//!   execution times and per-phase port rates (zero rates allowed);
//! - [`CsdfRepetitionVector`]: consistency and cycle-level repetition
//!   vectors;
//! - [`CsdfEngine`]: the timed ASAP executor (claim-at-start semantics,
//!   per the paper §2), wrapping the unified kernel's
//!   [`DataflowEngine`](buffy_analysis::DataflowEngine);
//! - [`csdf_throughput`]: reduced-state-space throughput analysis (paper
//!   §7, phase-aware), via the kernel's
//!   [`throughput_for`](buffy_analysis::throughput_for);
//! - [`csdf_explore`]: buffer/throughput Pareto exploration through the
//!   kernel's exact design-space driver
//!   ([`explore_design_space_for`](buffy_core::explore_design_space_for)).
//!
//! Since PR 2 the execution, throughput, and exploration algorithms are
//! implemented once in `buffy-analysis`/`buffy-core` against the
//! [`DataflowSemantics`](buffy_analysis::DataflowSemantics) trait;
//! [`CsdfGraph`] implements the trait and this crate only keeps the
//! CSDF-typed wrappers and phase-aware channel bounds.
//!
//! Every SDF graph embeds as a single-phase CSDF graph
//! ([`CsdfGraph::from_sdf`]); the test suite uses the embedding to
//! cross-validate this crate against the SDF analyses.
//!
//! # Example
//!
//! ```
//! use buffy_csdf::{csdf_throughput, CsdfGraph, CsdfLimits};
//! use buffy_graph::{Rational, StorageDistribution};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A producer that bursts 2 tokens every other step.
//! let mut b = CsdfGraph::builder("updown");
//! let p = b.actor("p", vec![1, 1]);
//! let c = b.actor("c", vec![1]);
//! b.channel("d", p, vec![2, 0], c, vec![1], 0)?;
//! let g = b.build()?;
//!
//! let r = csdf_throughput(&g, &StorageDistribution::from_capacities(vec![4]), c,
//!                         CsdfLimits::default())?;
//! assert_eq!(r.throughput, Rational::ONE);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod engine;
mod explore;
pub mod gallery;
mod hsdf;
mod model;
mod proptests;
mod repetition;
mod throughput;
pub mod xml;

pub use engine::{CsdfEngine, CsdfState, CsdfStepEvents, CsdfStepOutcome};
pub use explore::{
    csdf_channel_lower_bound, csdf_channel_step, csdf_explore, csdf_explore_observed,
    CsdfExplorationResult, CsdfExploreOptions,
};
pub use hsdf::{csdf_maximal_throughput, csdf_ratio_graph};
pub use model::{CsdfActor, CsdfChannel, CsdfError, CsdfGraph, CsdfGraphBuilder};
pub use repetition::{is_consistent, CsdfRepetitionVector};
pub use throughput::{csdf_throughput, CsdfLimits, CsdfThroughputReport};
