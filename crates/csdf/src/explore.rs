//! Buffer/throughput trade-off exploration for CSDF graphs.
//!
//! The exploration driver lives in the unified kernel:
//! [`buffy_core::explore_design_space_for`] runs the paper's exact
//! divide-and-conquer search for any
//! [`DataflowSemantics`](buffy_analysis::DataflowSemantics) model, and
//! [`CsdfGraph`] implements that trait. This module keeps the CSDF-typed
//! entry point plus the phase-aware channel bounds: capacities move in
//! steps of the gcd of all the channel's (non-zero) rates — token counts
//! are always congruent to the initial tokens modulo that gcd — and
//! single-phase channels get the exact SDF buffer minimum so that
//! embedded SDF graphs explore exactly the SDF grid.

use crate::model::{CsdfChannel, CsdfError, CsdfGraph};
use crate::throughput::CsdfLimits;
use buffy_analysis::{bmlb, AnalysisError, CancelToken};
use buffy_core::{
    explore_design_space_observed, Completeness, EvaluationFailure, ExplorationStats, ExploreError,
    ExploreObserver, ExploreOptions, NoopObserver, ObjectiveSpace, ParetoSet, SkippedSize,
    WarmStart,
};
use buffy_graph::{gcd_u64, ActorId, Rational};
use std::sync::Arc;

/// A safe lower bound on one channel's capacity for positive throughput.
///
/// Single-phase channels (both rate vectors of length 1, i.e. the SDF
/// embedding) get the exact buffer minimal for liveness ([`bmlb`]), so the
/// exploration grid of an embedded SDF graph is identical to the SDF
/// explorer's. Phased channels fall back to the largest single production
/// or consumption burst; the initial tokens must be storable either way.
pub fn csdf_channel_lower_bound(channel: &CsdfChannel) -> u64 {
    if let ([p], [c]) = (channel.production(), channel.consumption()) {
        return bmlb(*p, *c, channel.initial_tokens());
    }
    let max_prod = channel.production().iter().copied().max().unwrap_or(0);
    let max_cons = channel.consumption().iter().copied().max().unwrap_or(0);
    max_prod.max(max_cons).max(channel.initial_tokens())
}

/// The capacity quantum of a channel: the gcd of all non-zero rates.
pub fn csdf_channel_step(channel: &CsdfChannel) -> u64 {
    let mut g = 0u64;
    for &r in channel.production().iter().chain(channel.consumption()) {
        g = gcd_u64(g, r);
    }
    g.max(1)
}

/// Options for the CSDF exploration.
#[derive(Debug, Clone)]
pub struct CsdfExploreOptions {
    /// Observed actor (default: the graph's default).
    pub observed: Option<ActorId>,
    /// Hard cap on the distribution size; defaults to the computed
    /// upper bound (the size realizing the maximal throughput).
    pub max_size: Option<u64>,
    /// State-space limits per analysis.
    pub limits: CsdfLimits,
    /// Worker threads for evaluating candidate distributions: 1 =
    /// sequential, 0 = auto-detect via
    /// [`std::thread::available_parallelism`]. The reported statistics are
    /// identical for every thread count.
    pub threads: usize,
    /// Quantize throughputs searched to multiples of this value (paper
    /// §11: limits the number of Pareto points).
    pub quantum: Option<Rational>,
    /// Cooperative budget/cancellation token checked between evaluation
    /// strides; when it fires after the bounds phase the exploration
    /// degrades to a partial, bound-annotated front instead of failing.
    pub cancel: Option<Arc<CancelToken>>,
    /// Previously completed evaluations (e.g. from a checkpoint), replayed
    /// as recorded evaluations so a resumed run reproduces an
    /// uninterrupted one exactly.
    pub warm_start: Option<Arc<WarmStart>>,
    /// Run the static certificate pass before evaluating (default `true`);
    /// disable to measure its effect.
    pub static_prune: bool,
    /// Seed each cold evaluation's allocations from a neighbouring
    /// distribution's recorded state count (default `true`). Purely an
    /// allocation-layer hint: fronts and statistics (other than the
    /// warm-start counters) are identical either way.
    pub warm_start_neighbours: bool,
    /// Deterministic fault schedule for resilience testing (see
    /// [`buffy_core::FaultPlan`]); `None` in production.
    pub fault_plan: Option<Arc<buffy_core::FaultPlan>>,
    /// The objective space to explore (default: the paper's
    /// storage/throughput pair). Adding the energy axis requires power
    /// annotations on the graph's actors; the latency axis is an
    /// SDF-only CLI annotation and is rejected here by the CLI layer.
    pub objectives: ObjectiveSpace,
}

impl Default for CsdfExploreOptions {
    // Manual impl: the derive would default the booleans to `false`, but
    // pruning and neighbour warm starts are on unless explicitly disabled.
    fn default() -> Self {
        Self {
            observed: None,
            max_size: None,
            limits: CsdfLimits::default(),
            threads: 0,
            quantum: None,
            cancel: None,
            warm_start: None,
            static_prune: true,
            warm_start_neighbours: true,
            fault_plan: None,
            objectives: ObjectiveSpace::default_2d(),
        }
    }
}

/// Result of a CSDF exploration.
#[derive(Debug, Clone)]
pub struct CsdfExplorationResult {
    /// The Pareto front (phase-firing throughput of the observed actor).
    pub pareto: ParetoSet,
    /// The maximal achievable throughput of the observed actor.
    pub max_throughput: Rational,
    /// Evaluation statistics: analyses run, cache hits, largest state
    /// space, analysis wall time.
    pub stats: ExplorationStats,
    /// Whether the front is exact or a budget/interrupt truncated it.
    pub completeness: Completeness,
    /// Sizes enumerated but never evaluated, with conservative throughput
    /// bounds (only populated on truncated runs).
    pub skipped: Vec<SkippedSize>,
    /// Evaluations that panicked; the run degrades around them.
    pub failures: Vec<EvaluationFailure>,
}

/// Maps kernel exploration errors back into the CSDF vocabulary.
fn explore_to_csdf(e: ExploreError) -> CsdfError {
    match e {
        ExploreError::Graph(g) => CsdfError::from(AnalysisError::Graph(g)),
        ExploreError::Analysis(a) => CsdfError::from(a),
        // Cancellation before any salvageable result surfaces as the
        // analysis-layer cancellation error, keeping the reason.
        ExploreError::Cancelled { reason } => CsdfError::from(AnalysisError::Cancelled { reason }),
        // The remaining variants concern constrained searches this entry
        // point does not expose; an empty feasible space is the only way
        // they can reach us.
        _ => CsdfError::NoPositiveThroughput,
    }
}

/// Explores the buffer/throughput trade-off space of a CSDF graph through
/// the unified kernel's exact design-space exploration.
///
/// # Errors
///
/// Propagates engine/state-space errors; reports
/// [`CsdfError::Inconsistent`] via the repetition-vector check and
/// [`CsdfError::NoPositiveThroughput`] when no distribution is live.
///
/// # Examples
///
/// ```
/// use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CsdfGraph::builder("updown");
/// let p = b.actor("p", vec![1, 1]);
/// let c = b.actor("c", vec![1]);
/// b.channel("d", p, vec![2, 0], c, vec![1], 0)?;
/// let g = b.build()?;
/// let r = csdf_explore(&g, &CsdfExploreOptions::default())?;
/// assert!(!r.pareto.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn csdf_explore(
    graph: &CsdfGraph,
    options: &CsdfExploreOptions,
) -> Result<CsdfExplorationResult, CsdfError> {
    csdf_explore_observed(graph, options, &NoopObserver)
}

/// [`csdf_explore`] with a structured [`ExploreObserver`] receiving
/// evaluation, cache-hit, Pareto-accept and phase events as the search
/// runs.
///
/// # Errors
///
/// See [`csdf_explore`].
pub fn csdf_explore_observed(
    graph: &CsdfGraph,
    options: &CsdfExploreOptions,
    observer: &dyn ExploreObserver,
) -> Result<CsdfExplorationResult, CsdfError> {
    // Observation only: the wrapping span marks the CSDF run in traces;
    // the per-phase instrumentation happens inside the shared core driver.
    let _span = buffy_telemetry::active().map(|r| r.span("csdf-explore"));
    let core_options = ExploreOptions {
        observed: options.observed,
        max_size: options.max_size,
        quantum: options.quantum,
        limits: options.limits,
        threads: options.threads,
        cancel: options.cancel.clone(),
        warm_start: options.warm_start.clone(),
        static_prune: options.static_prune,
        warm_start_neighbours: options.warm_start_neighbours,
        fault_plan: options.fault_plan.clone(),
        objectives: options.objectives.clone(),
        ..ExploreOptions::default()
    };
    let r =
        explore_design_space_observed(graph, &core_options, observer).map_err(explore_to_csdf)?;
    Ok(CsdfExplorationResult {
        pareto: r.pareto,
        max_throughput: r.max_throughput,
        stats: r.stats,
        completeness: r.completeness,
        skipped: r.skipped,
        failures: r.failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_and_step() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        let ch = b.channel("d", p, vec![4, 2], c, vec![2], 3).unwrap();
        let g = b.build().unwrap();
        let channel = g.channel(ch);
        assert_eq!(csdf_channel_lower_bound(channel), 4);
        assert_eq!(csdf_channel_step(channel), 2);
    }

    #[test]
    fn single_phase_lower_bound_is_the_bmlb() {
        // An embedded SDF channel must use the exact SDF bound, not the
        // coarser max-burst bound, so the grids coincide.
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1]);
        let c = b.actor("c", vec![1]);
        let ch = b.channel("d", p, vec![2], c, vec![3], 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(csdf_channel_lower_bound(g.channel(ch)), 4); // 2+3−1
        assert_eq!(csdf_channel_step(g.channel(ch)), 1);
    }

    #[test]
    fn explore_updown() {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let r = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        // The front is monotone and reaches throughput 1 (c every step).
        let pts = r.pareto.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].size < w[1].size && w[0].throughput < w[1].throughput);
        }
        assert_eq!(r.max_throughput, Rational::ONE);
        assert_eq!(pts.last().unwrap().throughput, Rational::ONE);
        // The smallest live capacity is 2 (the burst must fit).
        assert_eq!(pts[0].size, 2);
    }

    #[test]
    fn explore_matches_sdf_front_on_single_phase() {
        // Embedding the paper's example graph must reproduce its front
        // (6, 1/7), (8, 1/6), (9, 1/5), (10, 1/4).
        let mut b = buffy_graph::SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        let r = csdf_explore(&csdf, &CsdfExploreOptions::default()).unwrap();
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(
            front,
            vec![
                (6, Rational::new(1, 7)),
                (8, Rational::new(1, 6)),
                (9, Rational::new(1, 5)),
                (10, Rational::new(1, 4)),
            ]
        );
    }

    #[test]
    fn inconsistent_graph_rejected() {
        let mut b = CsdfGraph::builder("bad");
        let x = b.actor("x", vec![1]);
        let y = b.actor("y", vec![1]);
        b.channel("f", x, vec![2], y, vec![1], 0).unwrap();
        b.channel("r", y, vec![1], x, vec![1], 1).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            csdf_explore(&g, &CsdfExploreOptions::default()),
            Err(CsdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn phase_dependent_buffering_pays_off() {
        // Three-phase producer with a large burst in one phase: capacities
        // between the burst size and burst+cycle trade throughput.
        let mut b = CsdfGraph::builder("burst3");
        let p = b.actor("p", vec![1, 1, 1]);
        let c = b.actor("c", vec![2]);
        b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
        let g = b.build().unwrap();
        let r = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        assert!(r.pareto.len() >= 2, "front: {:?}", r.pareto.points());
        assert!(r.max_throughput > Rational::ZERO);
    }

    #[test]
    fn eval_budget_degrades_to_a_sound_partial_front() {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let exact = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        assert!(exact.completeness.exact);
        assert!(exact.skipped.is_empty() && exact.failures.is_empty());
        // Grant enough budget for the bounds phase but not the sweep.
        let budget = exact.stats.evaluations - 1;
        let options = CsdfExploreOptions {
            cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget))),
            ..CsdfExploreOptions::default()
        };
        match csdf_explore(&g, &options) {
            Ok(partial) => {
                assert!(!partial.completeness.exact);
                // Every surviving point is a genuinely evaluated point of
                // the exact front's domination region.
                for pt in partial.pareto.points() {
                    assert!(exact
                        .pareto
                        .points()
                        .iter()
                        .any(|e| e.size <= pt.size && e.throughput >= pt.throughput));
                }
            }
            // The budget can also fire inside the bounds phase, where
            // nothing is salvageable.
            Err(e) => assert!(matches!(
                e,
                CsdfError::Analysis(AnalysisError::Cancelled { .. })
            )),
        }
    }

    #[test]
    fn threads_and_quantum_are_honored() {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let sequential = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        let threaded = csdf_explore(
            &g,
            &CsdfExploreOptions {
                threads: 4,
                ..CsdfExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sequential.pareto.points(), threaded.pareto.points());
        // Statistics are deterministic across thread counts.
        assert_eq!(sequential.stats, threaded.stats);
        // A coarse quantum collapses the front to at most a few points.
        let quantized = csdf_explore(
            &g,
            &CsdfExploreOptions {
                quantum: Some(Rational::new(1, 2)),
                ..CsdfExploreOptions::default()
            },
        )
        .unwrap();
        assert!(quantized.pareto.len() <= sequential.pareto.len());
        assert!(!quantized.pareto.is_empty());
    }
}
