//! Buffer/throughput trade-off exploration for CSDF graphs.
//!
//! Ports the dependency-guided exploration of `buffy-core` to the phased
//! model: starting from safe per-channel lower bounds, only channels whose
//! lack of space blocks a token-ready actor are grown, and the Pareto
//! front of (distribution size, throughput) is collected. Capacities move
//! in steps of the gcd of all the channel's (non-zero) rates and initial
//! tokens — token counts are always congruent to the initial tokens modulo
//! that gcd.

use crate::engine::{CsdfEngine, CsdfState, CsdfStepOutcome};
use crate::model::{CsdfError, CsdfGraph};
use crate::throughput::{csdf_throughput, CsdfLimits};
use buffy_core::{ParetoPoint, ParetoSet};
use buffy_graph::{gcd_u64, ActorId, ChannelId, Rational, StorageDistribution};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A safe lower bound on one channel's capacity for positive throughput:
/// the largest single production or consumption burst must fit, and the
/// initial tokens must be storable.
pub fn csdf_channel_lower_bound(channel: &crate::model::CsdfChannel) -> u64 {
    let max_prod = channel.production().iter().copied().max().unwrap_or(0);
    let max_cons = channel.consumption().iter().copied().max().unwrap_or(0);
    max_prod.max(max_cons).max(channel.initial_tokens())
}

/// The capacity quantum of a channel: the gcd of all non-zero rates.
pub fn csdf_channel_step(channel: &crate::model::CsdfChannel) -> u64 {
    let mut g = 0u64;
    for &r in channel.production().iter().chain(channel.consumption()) {
        g = gcd_u64(g, r);
    }
    g.max(1)
}

/// Options for the CSDF exploration.
#[derive(Debug, Clone, Default)]
pub struct CsdfExploreOptions {
    /// Observed actor (default: the graph's default).
    pub observed: Option<ActorId>,
    /// Hard cap on the distribution size; **required indirectly**: the
    /// exploration stops growing beyond the size at which the maximal
    /// throughput was observed, but a cap bounds pathological cases.
    pub max_size: Option<u64>,
    /// State-space limits per analysis.
    pub limits: CsdfLimits,
}

/// Result of a CSDF exploration.
#[derive(Debug, Clone)]
pub struct CsdfExplorationResult {
    /// The Pareto front (phase-firing throughput of the observed actor).
    pub pareto: ParetoSet,
    /// The highest throughput observed.
    pub max_throughput: Rational,
    /// Number of throughput analyses run.
    pub evaluations: usize,
}

/// Channels whose missing space blocks a token-ready actor in `state`.
fn blocked_channels(graph: &CsdfGraph, caps: &[u64], state: &CsdfState, out: &mut [bool]) {
    'actors: for actor in graph.actor_ids() {
        if state.act_clk[actor.index()] > 0 {
            continue;
        }
        let k = state.phase[actor.index()] as usize;
        for &cid in graph.input_channels(actor) {
            if state.tokens[cid.index()] < graph.channel(cid).consumption()[k] {
                continue 'actors;
            }
        }
        for &cid in graph.output_channels(actor) {
            let produce = graph.channel(cid).production()[k];
            let free = caps[cid.index()].saturating_sub(state.tokens[cid.index()]);
            if free < produce {
                out[cid.index()] = true;
            }
        }
    }
}

/// Runs the execution once more to collect storage dependencies over the
/// periodic phase (or the deadlock state).
fn dependencies(
    graph: &CsdfGraph,
    dist: &StorageDistribution,
    deadlocked: bool,
    limits: CsdfLimits,
) -> Result<Vec<bool>, CsdfError> {
    let caps = dist.as_slice().to_vec();
    let mut dependent = vec![false; graph.num_channels()];
    let mut engine = CsdfEngine::new(graph, dist);
    engine.start_initial()?;
    if deadlocked {
        loop {
            match engine.step()? {
                CsdfStepOutcome::Deadlock => break,
                CsdfStepOutcome::Progress(_) => {}
            }
        }
        blocked_channels(graph, &caps, engine.state(), &mut dependent);
        return Ok(dependent);
    }
    // Find the cycle window, then union the blocked sets over it.
    let mut index: HashMap<CsdfState, u64> = HashMap::new();
    index.insert(engine.state().clone(), 0);
    let (entry, end) = loop {
        if engine.time() >= limits.max_steps || index.len() > limits.max_states {
            return Err(CsdfError::StateLimitExceeded {
                limit: limits.max_states,
            });
        }
        match engine.step()? {
            CsdfStepOutcome::Deadlock => unreachable!("caller saw a periodic execution"),
            CsdfStepOutcome::Progress(_) => {
                if let Some(&e) = index.get(engine.state()) {
                    break (e, engine.time());
                }
                index.insert(engine.state().clone(), engine.time());
            }
        }
    };
    let mut engine = CsdfEngine::new(graph, dist);
    engine.start_initial()?;
    while engine.time() < entry {
        engine.step()?;
    }
    blocked_channels(graph, &caps, engine.state(), &mut dependent);
    while engine.time() < end {
        engine.step()?;
        blocked_channels(graph, &caps, engine.state(), &mut dependent);
    }
    Ok(dependent)
}

/// Explores the buffer/throughput trade-off space of a CSDF graph with the
/// dependency-guided frontier search.
///
/// # Errors
///
/// Propagates engine/state-space errors; reports
/// [`CsdfError::Inconsistent`] via the repetition-vector check.
///
/// # Examples
///
/// ```
/// use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CsdfGraph::builder("updown");
/// let p = b.actor("p", vec![1, 1]);
/// let c = b.actor("c", vec![1]);
/// b.channel("d", p, vec![2, 0], c, vec![1], 0)?;
/// let g = b.build()?;
/// let r = csdf_explore(&g, &CsdfExploreOptions::default())?;
/// assert!(!r.pareto.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn csdf_explore(
    graph: &CsdfGraph,
    options: &CsdfExploreOptions,
) -> Result<CsdfExplorationResult, CsdfError> {
    // Consistency check up front.
    crate::repetition::CsdfRepetitionVector::compute(graph)?;
    let observed = options
        .observed
        .unwrap_or_else(|| graph.default_observed_actor());
    // The maximal achievable throughput bounds the search: a distribution
    // that reaches it never needs to grow further.
    let thr_max = crate::hsdf::csdf_maximal_throughput(graph, observed)?;

    let mins: Vec<u64> = graph
        .channels()
        .map(|(_, c)| csdf_channel_lower_bound(c))
        .collect();
    let steps: Vec<u64> = graph
        .channels()
        .map(|(_, c)| csdf_channel_step(c))
        .collect();
    let start: StorageDistribution = mins.iter().copied().collect();
    let lb_size = start.size();
    // Default size cap: generous multiple of the lower bound; exploration
    // also stops on saturation (no dependencies below it).
    let max_size = options.max_size.unwrap_or(lb_size * 8 + 64);

    let mut frontier: BinaryHeap<Reverse<(u64, StorageDistribution)>> = BinaryHeap::new();
    let mut seen: HashSet<StorageDistribution> = HashSet::new();
    seen.insert(start.clone());
    frontier.push(Reverse((lb_size, start)));

    let mut pareto = ParetoSet::new();
    let mut best = Rational::ZERO;
    let mut evaluations = 0usize;

    while let Some(Reverse((size, dist))) = frontier.pop() {
        let r = csdf_throughput(graph, &dist, observed, options.limits)?;
        evaluations += 1;
        if !r.throughput.is_zero() {
            best = best.max(r.throughput);
            pareto.insert(ParetoPoint::new(dist.clone(), r.throughput));
            if r.throughput >= thr_max {
                continue; // growing further cannot be Pareto-optimal
            }
        }
        let deps = dependencies(graph, &dist, r.deadlocked, options.limits)?;
        if deps.iter().all(|&d| !d) {
            // Saturated: growing any channel changes nothing.
            continue;
        }
        for (i, &dep) in deps.iter().enumerate() {
            if !dep {
                continue;
            }
            let step = steps[i];
            if size + step > max_size {
                continue;
            }
            let child = dist.grown(ChannelId::new(i), step);
            if seen.insert(child.clone()) {
                frontier.push(Reverse((child.size(), child)));
            }
        }
    }

    Ok(CsdfExplorationResult {
        pareto,
        max_throughput: best,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_and_step() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        let ch = b.channel("d", p, vec![4, 2], c, vec![2], 3).unwrap();
        let g = b.build().unwrap();
        let channel = g.channel(ch);
        assert_eq!(csdf_channel_lower_bound(channel), 4);
        assert_eq!(csdf_channel_step(channel), 2);
    }

    #[test]
    fn explore_updown() {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let r = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        // The front is monotone and reaches throughput 1 (c every step).
        let pts = r.pareto.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].size < w[1].size && w[0].throughput < w[1].throughput);
        }
        assert_eq!(r.max_throughput, Rational::ONE);
        assert_eq!(pts.last().unwrap().throughput, Rational::ONE);
        // The smallest live capacity is 2 (the burst must fit).
        assert_eq!(pts[0].size, 2);
    }

    #[test]
    fn explore_matches_sdf_front_on_single_phase() {
        // Embedding the paper's example graph must reproduce its front
        // (6, 1/7), (8, 1/6), (9, 1/5), (10, 1/4).
        let mut b = buffy_graph::SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        let r = csdf_explore(&csdf, &CsdfExploreOptions::default()).unwrap();
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(
            front,
            vec![
                (6, Rational::new(1, 7)),
                (8, Rational::new(1, 6)),
                (9, Rational::new(1, 5)),
                (10, Rational::new(1, 4)),
            ]
        );
    }

    #[test]
    fn inconsistent_graph_rejected() {
        let mut b = CsdfGraph::builder("bad");
        let x = b.actor("x", vec![1]);
        let y = b.actor("y", vec![1]);
        b.channel("f", x, vec![2], y, vec![1], 0).unwrap();
        b.channel("r", y, vec![1], x, vec![1], 1).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            csdf_explore(&g, &CsdfExploreOptions::default()),
            Err(CsdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn phase_dependent_buffering_pays_off() {
        // Three-phase producer with a large burst in one phase: capacities
        // between the burst size and burst+cycle trade throughput.
        let mut b = CsdfGraph::builder("burst3");
        let p = b.actor("p", vec![1, 1, 1]);
        let c = b.actor("c", vec![2]);
        b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
        let g = b.build().unwrap();
        let r = csdf_explore(&g, &CsdfExploreOptions::default()).unwrap();
        assert!(r.pareto.len() >= 2, "front: {:?}", r.pareto.points());
        assert!(r.max_throughput > Rational::ZERO);
    }
}
