//! Small gallery of CSDF benchmark graphs used by examples, tests and
//! benches.

use crate::model::CsdfGraph;

/// A bursty two-phase producer feeding a unit-rate consumer: produces 2
/// tokens in its first phase and none in the second.
pub fn updown() -> CsdfGraph {
    let mut b = CsdfGraph::builder("updown");
    let p = b.actor("p", vec![1, 1]);
    let c = b.actor("c", vec![1]);
    b.channel("d", p, vec![2, 0], c, vec![1], 0)
        .expect("static graph");
    b.build().expect("static graph")
}

/// A line-based image scaler: per line it bursts 4 blocks, then 2, then is
/// silent while reading ahead; a filter consumes 2 blocks per firing and
/// streams pixels to a sink.
pub fn line_scaler() -> CsdfGraph {
    let mut b = CsdfGraph::builder("line-scaler");
    let scaler = b.actor("scaler", vec![1, 1, 2]);
    let filter = b.actor("filter", vec![1]);
    let sink = b.actor("sink", vec![1]);
    b.channel("blocks", scaler, vec![4, 2, 0], filter, vec![2], 0)
        .expect("static graph");
    b.channel("pixels", filter, vec![1], sink, vec![1], 0)
        .expect("static graph");
    b.build().expect("static graph")
}

/// A cyclo-static refinement of the H.263 decoder front end: the VLD
/// emits macroblock rows (6 phases of 99 blocks) instead of one
/// 594-block burst, exposing buffer savings SDF cannot express.
pub fn h263_rows() -> CsdfGraph {
    let mut b = CsdfGraph::builder("h263-rows");
    // Six row phases, roughly equal work per row.
    let vld = b.actor("vld", vec![44, 43, 43, 43, 43, 44]);
    let iq = b.actor("iq", vec![6]);
    let idct = b.actor("idct", vec![5]);
    let mc = b.actor("mc", vec![110]);
    b.channel("vld_iq", vld, vec![99; 6], iq, vec![1], 0)
        .expect("static graph");
    b.channel("iq_idct", iq, vec![1], idct, vec![1], 0)
        .expect("static graph");
    b.channel("idct_mc", idct, vec![1], mc, vec![594], 0)
        .expect("static graph");
    b.build().expect("static graph")
}

/// [`h263_rows`] with an actor power model (active/idle, dimensionless
/// energy per time step) for energy-aware exploration. Kept out of
/// [`all`] so the unannotated gallery stays byte-compatible; the figures
/// reflect the relative complexity of the decoder stages (motion
/// compensation dominates, the IDCT is cheap).
pub fn h263_rows_power() -> CsdfGraph {
    let mut b = CsdfGraph::builder("h263-rows-power");
    let vld = b
        .actor_with_power("vld", vec![44, 43, 43, 43, 43, 44], 30, 6)
        .expect("static graph");
    let iq = b
        .actor_with_power("iq", vec![6], 10, 2)
        .expect("static graph");
    let idct = b
        .actor_with_power("idct", vec![5], 8, 1)
        .expect("static graph");
    let mc = b
        .actor_with_power("mc", vec![110], 45, 9)
        .expect("static graph");
    b.channel("vld_iq", vld, vec![99; 6], iq, vec![1], 0)
        .expect("static graph");
    b.channel("iq_idct", iq, vec![1], idct, vec![1], 0)
        .expect("static graph");
    b.channel("idct_mc", idct, vec![1], mc, vec![594], 0)
        .expect("static graph");
    b.build().expect("static graph")
}

/// All gallery graphs.
pub fn all() -> Vec<CsdfGraph> {
    vec![updown(), line_scaler(), h263_rows()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{csdf_explore, CsdfExploreOptions};
    use crate::hsdf::csdf_maximal_throughput;
    use crate::repetition::{is_consistent, CsdfRepetitionVector};
    use buffy_graph::Rational;

    #[test]
    fn gallery_is_consistent() {
        for g in all() {
            assert!(is_consistent(&g), "{}", g.name());
        }
    }

    #[test]
    fn h263_rows_repetition() {
        let g = h263_rows();
        let q = CsdfRepetitionVector::compute(&g).unwrap();
        let vld = g.actor_by_name("vld").unwrap();
        let iq = g.actor_by_name("iq").unwrap();
        assert_eq!(q.cycles(vld), 1);
        assert_eq!(q.firings(&g, vld), 6);
        assert_eq!(q.firings(&g, iq), 594);
    }

    #[test]
    fn gallery_explores() {
        for g in [updown(), line_scaler()] {
            let r = csdf_explore(&g, &CsdfExploreOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(!r.pareto.is_empty(), "{}", g.name());
            let obs = g.default_observed_actor();
            let bound = csdf_maximal_throughput(&g, obs).unwrap();
            assert_eq!(
                r.pareto.maximal().unwrap().throughput,
                bound,
                "{}",
                g.name()
            );
            assert!(bound > Rational::ZERO);
        }
    }

    #[test]
    fn power_variant_mirrors_the_unannotated_topology() {
        let base = h263_rows();
        let powered = h263_rows_power();
        assert!(is_consistent(&powered));
        assert_eq!(powered.num_actors(), base.num_actors());
        assert_eq!(powered.num_channels(), base.num_channels());
        for (id, a) in base.actors() {
            assert_eq!(powered.actor(id).phase_times(), a.phase_times());
        }
        let mc = powered.actor_by_name("mc").unwrap();
        assert_eq!(powered.actor(mc).active_power(), 45);
        assert_eq!(powered.actor(mc).idle_power(), 9);
    }

    #[test]
    fn row_based_vld_smooths_the_burst() {
        // The row-phased VLD needs a visibly smaller first buffer than the
        // 594-token burst of the SDF model to achieve any throughput:
        // 99 (one row) vs 594.
        let g = h263_rows();
        let ch = g.channel(g.channel_by_name("vld_iq").unwrap());
        assert_eq!(crate::explore::csdf_channel_lower_bound(ch), 99);
    }
}
