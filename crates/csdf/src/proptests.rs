//! Property-based tests of the CSDF analyses.
//!
//! Deterministic seeded-loop style: each property draws many random
//! two-actor producer/consumer graphs from the in-repo [`SplitMix64`]
//! stream and asserts the invariant on every case. The failing seed is
//! part of the assertion message, so a failure is reproducible directly.

#![cfg(test)]

use crate::engine::{CsdfEngine, CsdfStepOutcome};
use crate::hsdf::csdf_maximal_throughput;
use crate::model::CsdfGraph;
use crate::throughput::{csdf_throughput, CsdfLimits};
use buffy_gen::SplitMix64;
use buffy_graph::{ChannelId, Rational, StorageDistribution};

const CASES: u64 = 120;

/// A random two-actor producer/consumer CSDF graph with a consistent
/// channel (the consumer consumes a constant rate per phase, which always
/// balances) — `None` when the draw yields zero total production.
fn producer_consumer(rng: &mut SplitMix64) -> Option<CsdfGraph> {
    let phases = rng.range_usize(1, 4);
    let prod: Vec<u64> = (0..phases).map(|_| rng.range_u64(0, 3)).collect();
    let prod_times: Vec<u64> = (0..phases).map(|_| rng.range_u64(1, 3)).collect();
    let cons_phases = rng.range_usize(1, 3);
    let cons_times: Vec<u64> = (0..cons_phases).map(|_| rng.range_u64(1, 3)).collect();
    let scale = rng.range_u64(1, 3);
    let tokens = rng.range_u64(0, 4);

    if prod.iter().sum::<u64>() == 0 {
        return None;
    }
    let mut b = CsdfGraph::builder("pc");
    let p = b.actor("p", prod_times);
    let c = b.actor("c", cons_times);
    b.channel("d", p, prod, c, vec![scale; cons_phases], tokens)
        .ok()?;
    b.build().ok()
}

fn limits() -> CsdfLimits {
    CsdfLimits {
        max_states: 1 << 14,
        max_steps: 1 << 20,
    }
}

/// Throughput is monotone in the channel capacity.
#[test]
fn throughput_monotone_in_capacity() {
    let mut rng = SplitMix64::seed_from_u64(0xC5DF_0001);
    for seed in 0..CASES {
        let Some(g) = producer_consumer(&mut rng) else {
            continue;
        };
        let base = rng.range_u64(1, 7);
        let obs = g.default_observed_actor();
        let d0 = StorageDistribution::from_capacities(vec![base]);
        let d1 = d0.grown(ChannelId::new(0), 2);
        let (Ok(r0), Ok(r1)) = (
            csdf_throughput(&g, &d0, obs, limits()),
            csdf_throughput(&g, &d1, obs, limits()),
        ) else {
            continue;
        };
        assert!(
            r1.throughput >= r0.throughput,
            "case {seed}: thr {} -> {} when growing capacity {} -> {}",
            r0.throughput,
            r1.throughput,
            base,
            base + 2
        );
    }
}

/// The simulated throughput never exceeds the HSDF/MCM bound.
#[test]
fn simulation_respects_maximal_throughput() {
    let mut rng = SplitMix64::seed_from_u64(0xC5DF_0002);
    for seed in 0..CASES {
        let Some(g) = producer_consumer(&mut rng) else {
            continue;
        };
        let cap = rng.range_u64(1, 11);
        let obs = g.default_observed_actor();
        let Ok(bound) = csdf_maximal_throughput(&g, obs) else {
            continue;
        };
        let d = StorageDistribution::from_capacities(vec![cap]);
        let Ok(r) = csdf_throughput(&g, &d, obs, limits()) else {
            continue;
        };
        assert!(
            r.throughput <= bound,
            "case {seed}: thr {} > bound {}",
            r.throughput,
            bound
        );
    }
}

/// Token counts never go negative or exceed the capacity, and the phase
/// index stays in range (engine safety invariants).
#[test]
fn engine_invariants_hold() {
    let mut rng = SplitMix64::seed_from_u64(0xC5DF_0003);
    for seed in 0..CASES {
        let Some(g) = producer_consumer(&mut rng) else {
            continue;
        };
        let cap = rng.range_u64(1, 9);
        let steps = rng.range_u64(1, 59);
        let d = StorageDistribution::from_capacities(vec![cap]);
        let mut e = CsdfEngine::new(&g, &d);
        if e.start_initial().is_err() {
            continue;
        }
        for _ in 0..steps {
            match e.step() {
                Ok(CsdfStepOutcome::Deadlock) => break,
                Ok(CsdfStepOutcome::Progress(_)) => {}
                Err(_) => break,
            }
            let s = e.state();
            // The channel may start over-full; it never grows beyond the
            // larger of capacity and initial fill.
            let ch = g.channel(ChannelId::new(0));
            assert!(
                s.tokens[0] <= cap.max(ch.initial_tokens()),
                "case {seed}: {} tokens with capacity {cap}",
                s.tokens[0]
            );
            for (i, &ph) in s.phase.iter().enumerate() {
                assert!(
                    (ph as usize) < g.actor(buffy_graph::ActorId::new(i)).num_phases(),
                    "case {seed}: phase {ph} out of range for actor {i}"
                );
            }
        }
    }
}

/// Deadlocked executions report zero throughput and vice versa.
#[test]
fn deadlock_iff_zero_throughput() {
    let mut rng = SplitMix64::seed_from_u64(0xC5DF_0004);
    for seed in 0..CASES {
        let Some(g) = producer_consumer(&mut rng) else {
            continue;
        };
        let cap = rng.range_u64(1, 9);
        let obs = g.default_observed_actor();
        let d = StorageDistribution::from_capacities(vec![cap]);
        let Ok(r) = csdf_throughput(&g, &d, obs, limits()) else {
            continue;
        };
        assert_eq!(
            r.deadlocked,
            r.throughput == Rational::ZERO,
            "case {seed}: deadlocked={} but throughput={}",
            r.deadlocked,
            r.throughput
        );
    }
}
