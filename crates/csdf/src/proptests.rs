//! Property-based tests of the CSDF analyses.

#![cfg(test)]

use crate::engine::{CsdfEngine, CsdfStepOutcome};
use crate::hsdf::csdf_maximal_throughput;
use crate::model::CsdfGraph;
use crate::throughput::{csdf_throughput, CsdfLimits};
use buffy_graph::{ChannelId, Rational, StorageDistribution};
use proptest::prelude::*;

/// A random two-actor producer/consumer CSDF graph with a consistent
/// channel (consumption vector scaled to balance production).
fn producer_consumer() -> impl Strategy<Value = CsdfGraph> {
    (
        proptest::collection::vec((0u64..4, 1u64..4), 1..4), // (prod, time) per phase
        proptest::collection::vec(1u64..4, 1..3),            // consumer phase times
        1u64..4,                                             // consumer rate scale
        0u64..5,                                             // initial tokens
    )
        .prop_filter_map("need positive cycle production", |(pp, ct, scale, d)| {
            let total_prod: u64 = pp.iter().map(|&(p, _)| p).sum();
            if total_prod == 0 {
                return None;
            }
            // Consumer consumes `scale` per phase over `k` phases; the
            // graph is consistent with q = (k·scale, total_prod) scaled.
            let k = ct.len() as u64;
            let mut b = CsdfGraph::builder("pc");
            let p = b.actor("p", pp.iter().map(|&(_, t)| t).collect());
            let c = b.actor("c", ct.clone());
            b.channel(
                "d",
                p,
                pp.iter().map(|&(p, _)| p).collect(),
                c,
                vec![scale; k as usize],
                d,
            )
            .ok()?;
            b.build().ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Throughput is monotone in the channel capacity.
    #[test]
    fn throughput_monotone_in_capacity(g in producer_consumer(), base in 1u64..8) {
        let obs = g.default_observed_actor();
        let limits = CsdfLimits { max_states: 1 << 14, max_steps: 1 << 20 };
        let d0 = StorageDistribution::from_capacities(vec![base]);
        let d1 = d0.grown(ChannelId::new(0), 2);
        let (Ok(r0), Ok(r1)) = (
            csdf_throughput(&g, &d0, obs, limits),
            csdf_throughput(&g, &d1, obs, limits),
        ) else { return Ok(()); };
        prop_assert!(r1.throughput >= r0.throughput,
            "thr {} -> {} when growing capacity {} -> {}",
            r0.throughput, r1.throughput, base, base + 2);
    }

    /// The simulated throughput never exceeds the HSDF/MCM bound.
    #[test]
    fn simulation_respects_maximal_throughput(g in producer_consumer(), cap in 1u64..12) {
        let obs = g.default_observed_actor();
        let Ok(bound) = csdf_maximal_throughput(&g, obs) else { return Ok(()); };
        let limits = CsdfLimits { max_states: 1 << 14, max_steps: 1 << 20 };
        let d = StorageDistribution::from_capacities(vec![cap]);
        let Ok(r) = csdf_throughput(&g, &d, obs, limits) else { return Ok(()); };
        prop_assert!(r.throughput <= bound, "thr {} > bound {}", r.throughput, bound);
    }

    /// Token counts never go negative or exceed the capacity, and the
    /// phase index stays in range (engine safety invariants).
    #[test]
    fn engine_invariants_hold(g in producer_consumer(), cap in 1u64..10, steps in 1u64..60) {
        let d = StorageDistribution::from_capacities(vec![cap]);
        let mut e = CsdfEngine::new(&g, &d);
        if e.start_initial().is_err() { return Ok(()); }
        for _ in 0..steps {
            match e.step() {
                Ok(CsdfStepOutcome::Deadlock) => break,
                Ok(CsdfStepOutcome::Progress(_)) => {}
                Err(_) => break,
            }
            let s = e.state();
            // The channel may start over-full; it never grows beyond the
            // larger of capacity and initial fill.
            let ch = g.channel(ChannelId::new(0));
            prop_assert!(s.tokens[0] <= cap.max(ch.initial_tokens()));
            for (i, &ph) in s.phase.iter().enumerate() {
                prop_assert!((ph as usize) < g.actor(buffy_graph::ActorId::new(i)).num_phases());
            }
        }
    }

    /// Deadlocked executions report zero throughput and vice versa.
    #[test]
    fn deadlock_iff_zero_throughput(g in producer_consumer(), cap in 1u64..10) {
        let obs = g.default_observed_actor();
        let limits = CsdfLimits { max_states: 1 << 14, max_steps: 1 << 20 };
        let d = StorageDistribution::from_capacities(vec![cap]);
        let Ok(r) = csdf_throughput(&g, &d, obs, limits) else { return Ok(()); };
        prop_assert_eq!(r.deadlocked, r.throughput == Rational::ZERO);
    }
}
