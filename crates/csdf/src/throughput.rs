//! Throughput analysis for CSDF graphs via the reduced state space.
//!
//! The analysis itself lives in the unified kernel:
//! [`buffy_analysis::throughput_for`] runs the reduced-state-space cycle
//! detection of the paper (§7) for any [`DataflowSemantics`] model, CSDF
//! included — the bounded self-timed execution is deterministic and
//! finite-state, so it is periodic or deadlocks, and the throughput of the
//! observed actor is its number of *complete firings* (phase executions)
//! on the cycle divided by the cycle duration. This module keeps the
//! CSDF-typed entry point and report;
//! [`CsdfThroughputReport::cycle_throughput`] converts to full
//! phase-cycles per time unit.
//!
//! [`DataflowSemantics`]: buffy_analysis::DataflowSemantics

use crate::model::{CsdfError, CsdfGraph};
use buffy_analysis::{throughput_for, Capacities, ExplorationLimits};
use buffy_graph::{ActorId, Rational, StorageDistribution};

/// Limits for the CSDF state-space search: the kernel's
/// [`ExplorationLimits`], shared with the SDF analyses.
pub type CsdfLimits = ExplorationLimits;

/// Result of a CSDF throughput analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfThroughputReport {
    /// Phase firings of the observed actor per time step (0 on deadlock).
    pub throughput: Rational,
    /// Phases per full cycle of the observed actor.
    pub phases: u64,
    /// Whether the execution deadlocked.
    pub deadlocked: bool,
    /// Reduced states stored.
    pub states_stored: usize,
    /// Duration of the periodic phase.
    pub period: u64,
    /// Phase firings of the observed actor per period.
    pub firings_per_period: u64,
}

impl CsdfThroughputReport {
    /// Throughput in full phase-cycles of the observed actor per time
    /// unit.
    pub fn cycle_throughput(&self) -> Rational {
        if self.phases == 0 {
            return Rational::ZERO;
        }
        self.throughput / Rational::from(self.phases)
    }
}

/// Computes the throughput of `observed` under the storage distribution
/// `dist` by running the graph through the unified kernel's reduced
/// state-space analysis.
///
/// # Errors
///
/// [`CsdfError::StateLimitExceeded`] / [`CsdfError::ZeroTimeLivelock`].
///
/// # Examples
///
/// A two-phase producer bursting 2 tokens every other step into a
/// unit-rate consumer:
///
/// ```
/// use buffy_csdf::{csdf_throughput, CsdfGraph, CsdfLimits};
/// use buffy_graph::{Rational, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CsdfGraph::builder("updown");
/// let p = b.actor("p", vec![1, 1]);
/// let c = b.actor("c", vec![1]);
/// b.channel("d", p, vec![2, 0], c, vec![1], 0)?;
/// let g = b.build()?;
/// let r = csdf_throughput(&g, &StorageDistribution::from_capacities(vec![4]), c,
///                         CsdfLimits::default())?;
/// assert_eq!(r.throughput, Rational::ONE); // c fires every step at steady state
/// # Ok(())
/// # }
/// ```
pub fn csdf_throughput(
    graph: &CsdfGraph,
    dist: &StorageDistribution,
    observed: ActorId,
    limits: CsdfLimits,
) -> Result<CsdfThroughputReport, CsdfError> {
    let phases = graph.actor(observed).num_phases() as u64;
    let r = throughput_for(graph, Capacities::from_distribution(dist), observed, limits)
        .map_err(CsdfError::from)?;
    Ok(CsdfThroughputReport {
        throughput: r.throughput,
        phases,
        deadlocked: r.deadlocked,
        states_stored: r.states_stored,
        period: r.period,
        firings_per_period: r.firings_per_period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_analysis::throughput as sdf_throughput;
    use buffy_graph::SdfGraph;

    #[test]
    fn matches_sdf_on_single_phase_graphs() {
        // The paper's example embedded as single-phase CSDF must reproduce
        // every throughput value of the SDF analysis.
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        let c_sdf = sdf.actor_by_name("c").unwrap();
        let c_csdf = csdf.actor_by_name("c").unwrap();
        for caps in [[4u64, 2], [5, 2], [6, 2], [6, 3], [7, 3], [4, 1], [9, 9]] {
            let d = StorageDistribution::from_capacities(caps.to_vec());
            let s = sdf_throughput(&sdf, &d, c_sdf).unwrap();
            let r = csdf_throughput(&csdf, &d, c_csdf, CsdfLimits::default()).unwrap();
            assert_eq!(s.throughput, r.throughput, "caps {caps:?}");
            assert_eq!(s.deadlocked, r.deadlocked, "caps {caps:?}");
            assert_eq!(r.cycle_throughput(), r.throughput); // single phase
        }
    }

    #[test]
    fn bursty_producer_steady_state() {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let c = g.actor_by_name("c").unwrap();
        // Ample capacity: c fires every step.
        let r = csdf_throughput(
            &g,
            &StorageDistribution::from_capacities(vec![4]),
            c,
            CsdfLimits::default(),
        )
        .unwrap();
        assert_eq!(r.throughput, Rational::ONE);
        // Capacity 2: p can only refill after c drained both tokens —
        // throughput drops below 1.
        let r2 = csdf_throughput(
            &g,
            &StorageDistribution::from_capacities(vec![2]),
            c,
            CsdfLimits::default(),
        )
        .unwrap();
        assert!(!r2.deadlocked);
        assert!(r2.throughput < Rational::ONE, "{}", r2.throughput);
        // Capacity 1: the burst of 2 never fits.
        let r3 = csdf_throughput(
            &g,
            &StorageDistribution::from_capacities(vec![1]),
            c,
            CsdfLimits::default(),
        )
        .unwrap();
        assert!(r3.deadlocked);
    }

    #[test]
    fn observed_actor_with_phases_counts_phase_firings() {
        // Consumer with two phases consuming (1, 1): its phase throughput
        // is twice its cycle throughput.
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1]);
        let c = b.actor("c", vec![1, 1]);
        b.channel("d", p, vec![1], c, vec![1, 1], 0).unwrap();
        let g = b.build().unwrap();
        let c = g.actor_by_name("c").unwrap();
        let r = csdf_throughput(
            &g,
            &StorageDistribution::from_capacities(vec![2]),
            c,
            CsdfLimits::default(),
        )
        .unwrap();
        assert_eq!(r.cycle_throughput() * Rational::from(2u64), r.throughput);
    }

    #[test]
    fn state_limit_enforced() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1]);
        let c = b.actor("c", vec![3]);
        b.channel("d", p, vec![1], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let c = g.actor_by_name("c").unwrap();
        let err = csdf_throughput(
            &g,
            &StorageDistribution::from_capacities(vec![5]),
            c,
            CsdfLimits {
                max_states: 1,
                max_steps: 2,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CsdfError::StateLimitExceeded { .. }));
    }
}
