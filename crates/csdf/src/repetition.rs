//! Repetition vectors and consistency for CSDF graphs.
//!
//! The balance equations of CSDF relate *full phase cycles*: for a channel
//! `a → b`, `q(a) · Σ production = q(b) · Σ consumption`, where `q`
//! counts complete traversals of each actor's phase sequence per graph
//! iteration. The phase-level repetition entry is `q(a) · phases(a)`.

use crate::model::{CsdfError, CsdfGraph};
use buffy_graph::{gcd_u128, ActorId, Rational};

/// The cycle-level repetition vector of a consistent CSDF graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfRepetitionVector {
    entries: Vec<u64>,
}

impl CsdfRepetitionVector {
    /// Solves the balance equations.
    ///
    /// # Errors
    ///
    /// [`CsdfError::Inconsistent`] when only the trivial solution exists,
    /// [`CsdfError::RepetitionOverflow`] on overflow.
    pub fn compute(graph: &CsdfGraph) -> Result<CsdfRepetitionVector, CsdfError> {
        let n = graph.num_actors();
        let mut rates: Vec<Option<Rational>> = vec![None; n];
        let mut component: Vec<usize> = vec![usize::MAX; n];
        let mut num_components = 0;

        for start in 0..n {
            if rates[start].is_some() {
                continue;
            }
            let comp = num_components;
            num_components += 1;
            rates[start] = Some(Rational::ONE);
            component[start] = comp;
            let mut stack = vec![ActorId::new(start)];
            while let Some(actor) = stack.pop() {
                let r = rates[actor.index()].expect("visited");
                let out = graph.output_channels(actor).iter().map(|&c| (c, true));
                let inp = graph.input_channels(actor).iter().map(|&c| (c, false));
                for (cid, outgoing) in out.chain(inp) {
                    let ch = graph.channel(cid);
                    let (p, c) = (
                        ch.cycle_production() as i128,
                        ch.cycle_consumption() as i128,
                    );
                    let (other, expected) = if outgoing {
                        (ch.target(), r * Rational::new(p, c))
                    } else {
                        (ch.source(), r * Rational::new(c, p))
                    };
                    match rates[other.index()] {
                        None => {
                            rates[other.index()] = Some(expected);
                            component[other.index()] = comp;
                            stack.push(other);
                        }
                        Some(existing) if existing != expected => {
                            return Err(CsdfError::Inconsistent {
                                channel: ch.name().to_string(),
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }

        let mut entries = vec![0u64; n];
        for comp in 0..num_components {
            let members: Vec<usize> = (0..n).filter(|&i| component[i] == comp).collect();
            let mut lcm: u128 = 1;
            for &i in &members {
                let d = rates[i].expect("assigned").denom().unsigned_abs();
                let g = gcd_u128(lcm, d);
                lcm = lcm
                    .checked_mul(d / g)
                    .ok_or(CsdfError::RepetitionOverflow)?;
            }
            let scaled: Vec<u128> = members
                .iter()
                .map(|&i| {
                    let r = rates[i].expect("assigned");
                    r.numer().unsigned_abs() * (lcm / r.denom().unsigned_abs())
                })
                .collect();
            let mut g = 0u128;
            for &v in &scaled {
                g = gcd_u128(g, v);
            }
            for (&i, &v) in members.iter().zip(&scaled) {
                entries[i] = u64::try_from(v / g).map_err(|_| CsdfError::RepetitionOverflow)?;
            }
        }
        Ok(CsdfRepetitionVector { entries })
    }

    /// Full phase cycles of `actor` per iteration.
    pub fn cycles(&self, actor: ActorId) -> u64 {
        self.entries[actor.index()]
    }

    /// Phase-level firings of `actor` per iteration.
    pub fn firings(&self, graph: &CsdfGraph, actor: ActorId) -> u64 {
        self.entries[actor.index()] * graph.actor(actor).num_phases() as u64
    }

    /// The entries (cycle counts), indexed by actor index.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

/// Whether the CSDF graph is consistent.
pub fn is_consistent(graph: &CsdfGraph) -> bool {
    CsdfRepetitionVector::compute(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_balance() {
        // p: phases (1,1), produces (2,0) → over a cycle 2 tokens;
        // c: 1 phase, consumes 1 → q = (1, 2).
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 1]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let q = CsdfRepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 2]);
        assert_eq!(q.cycles(p), 1);
        assert_eq!(q.firings(&g, p), 2);
        assert_eq!(q.firings(&g, c), 2);
        assert!(is_consistent(&g));
    }

    #[test]
    fn inconsistent_cycle() {
        let mut b = CsdfGraph::builder("bad");
        let x = b.actor("x", vec![1]);
        let y = b.actor("y", vec![1]);
        b.channel("f", x, vec![2], y, vec![1], 0).unwrap();
        b.channel("r", y, vec![1], x, vec![1], 1).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            CsdfRepetitionVector::compute(&g),
            Err(CsdfError::Inconsistent { .. })
        ));
        assert!(!is_consistent(&g));
    }

    #[test]
    fn sdf_equivalence() {
        // The single-phase CSDF of the paper's example has the same
        // repetition vector (3, 2, 1).
        let mut b = buffy_graph::SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        let q = CsdfRepetitionVector::compute(&csdf).unwrap();
        assert_eq!(q.as_slice(), &[3, 2, 1]);
    }

    use crate::model::{CsdfError, CsdfGraph};
}
