//! SDF3-style XML input/output for CSDF graphs.
//!
//! The SDF3 `csdf` dialect writes per-phase rates as comma-separated
//! lists (`rate="2,0,1"`) and per-phase execution times likewise. This
//! module reads and writes that shape, reusing the XML substrate of
//! `buffy-graph`.

use crate::model::{CsdfError, CsdfGraph};
use buffy_graph::xml::{parse, XmlElement, XmlError};
use core::fmt;
use std::collections::HashMap;

/// Errors raised while reading a CSDF graph from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsdfXmlError {
    /// Malformed XML text.
    Parse(XmlError),
    /// A required element or attribute is missing.
    Missing {
        /// Description of the missing item.
        what: String,
    },
    /// An attribute value could not be interpreted.
    Invalid {
        /// Description of the bad value.
        what: String,
    },
    /// The graph content is invalid.
    Graph(CsdfError),
}

impl fmt::Display for CsdfXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdfXmlError::Parse(e) => write!(f, "{e}"),
            CsdfXmlError::Missing { what } => write!(f, "missing {what}"),
            CsdfXmlError::Invalid { what } => write!(f, "invalid {what}"),
            CsdfXmlError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsdfXmlError {}

impl From<XmlError> for CsdfXmlError {
    fn from(e: XmlError) -> Self {
        CsdfXmlError::Parse(e)
    }
}

impl From<CsdfError> for CsdfXmlError {
    fn from(e: CsdfError) -> Self {
        CsdfXmlError::Graph(e)
    }
}

fn missing(what: impl Into<String>) -> CsdfXmlError {
    CsdfXmlError::Missing { what: what.into() }
}

fn invalid(what: impl Into<String>) -> CsdfXmlError {
    CsdfXmlError::Invalid { what: what.into() }
}

fn parse_list(el: &XmlElement, key: &str, value: &str) -> Result<Vec<u64>, CsdfXmlError> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| invalid(format!("attribute {key}={value:?} on <{}>", el.name)))
        })
        .collect()
}

fn req<'a>(el: &'a XmlElement, key: &str) -> Result<&'a str, CsdfXmlError> {
    el.attribute(key)
        .ok_or_else(|| missing(format!("attribute {key:?} on <{}>", el.name)))
}

/// Reads a CSDF graph from SDF3-style XML text.
///
/// Channels carry `srcRate`/`dstRate` comma-separated per-phase lists (or
/// reference ports declared with such lists); execution times come from
/// `<actorProperties>` with a comma-separated `time` attribute, defaulting
/// to 1 per phase (phase count inferred from the rate lists).
///
/// # Errors
///
/// [`CsdfXmlError`] on malformed XML or invalid content.
pub fn read_csdf_xml(text: &str) -> Result<CsdfGraph, CsdfXmlError> {
    let root = parse(text)?;
    let app = root
        .find_descendant("applicationGraph")
        .ok_or_else(|| missing("<applicationGraph> element"))?;
    let body = app
        .find_descendant("csdf")
        .or_else(|| app.find_descendant("sdf"))
        .ok_or_else(|| missing("<csdf> element"))?;
    let name = app
        .attribute("name")
        .or_else(|| body.attribute("name"))
        .unwrap_or("csdf-graph");

    // Execution time lists and optional power annotations.
    let mut times: HashMap<String, Vec<u64>> = HashMap::new();
    let mut powers: HashMap<String, (u64, u64)> = HashMap::new();
    if let Some(props) = app
        .find_descendant("csdfProperties")
        .or_else(|| app.find_descendant("sdfProperties"))
    {
        for ap in props.find_all("actorProperties") {
            let actor = req(ap, "actor")?;
            if let Some(et) = ap.find_descendant("executionTime") {
                times.insert(actor.to_string(), parse_list(et, "time", req(et, "time")?)?);
            }
            if let Some(pw) = ap.find_descendant("power") {
                let attr = |key: &str| -> Result<u64, CsdfXmlError> {
                    match pw.attribute(key) {
                        Some(v) => v.trim().parse().map_err(|_| {
                            invalid(format!("attribute {key}={v:?} on <power> of {actor:?}"))
                        }),
                        None => Ok(0),
                    }
                };
                powers.insert(actor.to_string(), (attr("active")?, attr("idle")?));
            }
        }
    }

    // Ports (optional; compact channels carry rates directly).
    let mut port_rates: HashMap<(String, String), Vec<u64>> = HashMap::new();
    let mut actor_names = Vec::new();
    for actor_el in body.find_all("actor") {
        let a = req(actor_el, "name")?.to_string();
        for port in actor_el.find_all("port") {
            let p = req(port, "name")?.to_string();
            port_rates.insert(
                (a.clone(), p),
                parse_list(port, "rate", req(port, "rate")?)?,
            );
        }
        actor_names.push(a);
    }

    // First pass: determine phase counts from rates or times.
    let mut phases: HashMap<String, usize> = HashMap::new();
    let rate_of = |ch: &XmlElement,
                   actor: &str,
                   rate_key: &str,
                   port_key: &str|
     -> Result<Vec<u64>, CsdfXmlError> {
        match (ch.attribute(rate_key), ch.attribute(port_key)) {
            (Some(r), _) => parse_list(ch, rate_key, r),
            (None, Some(p)) => port_rates
                .get(&(actor.to_string(), p.to_string()))
                .cloned()
                .ok_or_else(|| missing(format!("port {p:?} on actor {actor:?}"))),
            (None, None) => Err(missing(format!(
                "{rate_key} or {port_key} on channel {:?}",
                ch.attribute("name").unwrap_or("?")
            ))),
        }
    };

    struct RawChannel {
        name: String,
        src: String,
        dst: String,
        prod: Vec<u64>,
        cons: Vec<u64>,
        tokens: u64,
    }
    let mut raw = Vec::new();
    for ch in body.find_all("channel") {
        let cname = req(ch, "name")?.to_string();
        let src = req(ch, "srcActor")?.to_string();
        let dst = req(ch, "dstActor")?.to_string();
        let prod = rate_of(ch, &src, "srcRate", "srcPort")?;
        let cons = rate_of(ch, &dst, "dstRate", "dstPort")?;
        let tokens = match ch.attribute("initialTokens") {
            Some(t) => t
                .trim()
                .parse()
                .map_err(|_| invalid(format!("initialTokens={t:?} on channel {cname:?}")))?,
            None => 0,
        };
        phases.entry(src.clone()).or_insert(prod.len());
        phases.entry(dst.clone()).or_insert(cons.len());
        raw.push(RawChannel {
            name: cname,
            src,
            dst,
            prod,
            cons,
            tokens,
        });
    }

    let mut b = CsdfGraph::builder(name);
    let mut ids = HashMap::new();
    for a in &actor_names {
        let t = match times.get(a) {
            Some(t) => t.clone(),
            None => vec![1; phases.get(a).copied().unwrap_or(1)],
        };
        let id = match powers.get(a).copied() {
            Some((active, idle)) => b.actor_with_power(a, t, active, idle)?,
            None => b.actor(a, t),
        };
        ids.insert(a.clone(), id);
    }
    for ch in raw {
        let src = *ids.get(&ch.src).ok_or_else(|| {
            missing(format!(
                "actor {:?} referenced by channel {:?}",
                ch.src, ch.name
            ))
        })?;
        let dst = *ids.get(&ch.dst).ok_or_else(|| {
            missing(format!(
                "actor {:?} referenced by channel {:?}",
                ch.dst, ch.name
            ))
        })?;
        b.channel(ch.name, src, ch.prod, dst, ch.cons, ch.tokens)?;
    }
    Ok(b.build()?)
}

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Serializes a CSDF graph as SDF3-style XML (the `csdf` dialect); output
/// round-trips through [`read_csdf_xml`].
pub fn write_csdf_xml(graph: &CsdfGraph) -> String {
    let mut body = XmlElement::new("csdf")
        .attr("name", graph.name())
        .attr("type", graph.name());
    for (_, actor) in graph.actors() {
        body = body.child(
            XmlElement::new("actor")
                .attr("name", actor.name())
                .attr("type", actor.name()),
        );
    }
    for (_, ch) in graph.channels() {
        let mut el = XmlElement::new("channel")
            .attr("name", ch.name())
            .attr("srcActor", graph.actor(ch.source()).name())
            .attr("srcRate", join(ch.production()))
            .attr("dstActor", graph.actor(ch.target()).name())
            .attr("dstRate", join(ch.consumption()));
        if ch.initial_tokens() > 0 {
            el = el.attr("initialTokens", ch.initial_tokens());
        }
        body = body.child(el);
    }
    let mut props = XmlElement::new("csdfProperties");
    for (_, actor) in graph.actors() {
        let mut ap = XmlElement::new("actorProperties")
            .attr("actor", actor.name())
            .child(
                XmlElement::new("processor")
                    .attr("type", "default")
                    .attr("default", "true")
                    .child(
                        XmlElement::new("executionTime").attr("time", join(actor.phase_times())),
                    ),
            );
        // Only annotated actors get a <power> child, so documents for
        // unannotated graphs stay byte-identical to earlier versions.
        if actor.active_power() != 0 || actor.idle_power() != 0 {
            ap = ap.child(
                XmlElement::new("power")
                    .attr("active", actor.active_power())
                    .attr("idle", actor.idle_power()),
            );
        }
        props = props.child(ap);
    }
    let root = XmlElement::new("sdf3")
        .attr("type", "csdf")
        .attr("version", "1.0")
        .child(
            XmlElement::new("applicationGraph")
                .attr("name", graph.name())
                .child(body)
                .child(props),
        );
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&root.to_xml_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updown() -> CsdfGraph {
        let mut b = CsdfGraph::builder("updown");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![3]);
        b.channel("d", p, vec![2, 0], c, vec![1], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = updown();
        let text = write_csdf_xml(&g);
        assert!(text.contains("srcRate=\"2,0\""));
        assert!(text.contains("time=\"1,2\""));
        let back = read_csdf_xml(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_preserves_power_annotations() {
        let mut b = CsdfGraph::builder("powered");
        let p = b.actor_with_power("p", vec![1, 2], 12, 5).unwrap();
        let c = b.actor("c", vec![3]);
        b.channel("d", p, vec![2, 0], c, vec![1], 1).unwrap();
        let g = b.build().unwrap();
        let text = write_csdf_xml(&g);
        assert_eq!(text.matches("<power ").count(), 1);
        assert!(text.contains(r#"<power active="12" idle="5"/>"#));
        let back = read_csdf_xml(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn reads_handwritten_document() {
        let g = read_csdf_xml(
            r#"<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
                 <actor name="x"/><actor name="y"/>
                 <channel name="c" srcActor="x" srcRate="1,0,2" dstActor="y" dstRate="1" initialTokens="2"/>
               </csdf>
               <csdfProperties>
                 <actorProperties actor="x"><processor type="p" default="true"><executionTime time="1,1,3"/></processor></actorProperties>
               </csdfProperties>
               </applicationGraph></sdf3>"#,
        )
        .unwrap();
        let x = g.actor_by_name("x").unwrap();
        assert_eq!(g.actor(x).phase_times(), &[1, 1, 3]);
        let c = g.channel_by_name("c").unwrap();
        assert_eq!(g.channel(c).production(), &[1, 0, 2]);
        assert_eq!(g.channel(c).initial_tokens(), 2);
        // y's phase count inferred from the rate list; default time 1.
        let y = g.actor_by_name("y").unwrap();
        assert_eq!(g.actor(y).phase_times(), &[1]);
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            read_csdf_xml("<sdf3/>"),
            Err(CsdfXmlError::Missing { .. })
        ));
        assert!(matches!(
            read_csdf_xml("<sdf3><applicationGraph name=\"g\"><csdf name=\"g\"><actor name=\"x\"/><channel name=\"c\" srcActor=\"x\" dstActor=\"x\" dstRate=\"1\"/></csdf></applicationGraph></sdf3>"),
            Err(CsdfXmlError::Missing { .. })
        ));
        assert!(matches!(
            read_csdf_xml("<sdf3><applicationGraph name=\"g\"><csdf name=\"g\"><actor name=\"x\"/><channel name=\"c\" srcActor=\"x\" srcRate=\"z\" dstActor=\"x\" dstRate=\"1\"/></csdf></applicationGraph></sdf3>"),
            Err(CsdfXmlError::Invalid { .. })
        ));
        assert!(matches!(
            read_csdf_xml("<oops"),
            Err(CsdfXmlError::Parse(_))
        ));
    }

    #[test]
    fn sdf_documents_also_load() {
        // A plain <sdf> document with scalar rates loads as single-phase
        // CSDF.
        let g = read_csdf_xml(
            r#"<sdf3><applicationGraph name="g"><sdf name="g">
                 <actor name="x"/><actor name="y"/>
                 <channel name="c" srcActor="x" srcRate="2" dstActor="y" dstRate="3"/>
               </sdf></applicationGraph></sdf3>"#,
        )
        .unwrap();
        let c = g.channel_by_name("c").unwrap();
        assert_eq!(g.channel(c).production(), &[2]);
        assert_eq!(g.channel(c).consumption(), &[3]);
    }
}
