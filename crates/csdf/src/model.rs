//! The Cyclo-Static Dataflow (CSDF) graph model.
//!
//! CSDF generalizes SDF: an actor cycles through a fixed sequence of
//! *phases*; each phase has its own execution time, and each port has one
//! rate *per phase of its actor* (rates may be zero in individual phases).
//! Every SDF graph is a CSDF graph with a single phase per actor.

use buffy_analysis::{AnalysisError, DataflowSemantics, LimitKind};
use buffy_graph::{ActorId, ChannelId, GraphError, Rational, SdfGraph};
use core::fmt;
use std::collections::HashSet;

/// Errors raised while building or analyzing a CSDF graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsdfError {
    /// Two actors share a name.
    DuplicateActorName {
        /// The clashing name.
        name: String,
    },
    /// Two channels share a name.
    DuplicateChannelName {
        /// The clashing name.
        name: String,
    },
    /// An actor id was out of range.
    UnknownActor {
        /// Display form of the id.
        name: String,
    },
    /// An actor was declared with no phases.
    NoPhases {
        /// The offending actor.
        actor: String,
    },
    /// A channel's per-phase rate vector length does not match its actor's
    /// phase count.
    RateArityMismatch {
        /// The offending channel.
        channel: String,
    },
    /// An actor's idle power exceeds its active power (the energy model
    /// requires idle ≤ active; see `buffy_graph::SdfGraphBuilder`).
    IdlePowerExceedsActive {
        /// The offending actor.
        actor: String,
    },
    /// A port produces or consumes nothing over a whole phase cycle.
    ZeroCycleRate {
        /// The offending channel.
        channel: String,
    },
    /// The graph has no actors.
    EmptyGraph,
    /// The balance equations admit only the trivial solution.
    Inconsistent {
        /// A channel whose balance equation fails.
        channel: String,
    },
    /// Repetition-vector entries overflow.
    RepetitionOverflow,
    /// Zero-execution-time phases fire without bound within one time step.
    ZeroTimeLivelock,
    /// A state-space search exceeded its limits. Mirrors
    /// [`AnalysisError::StateLimitExceeded`]: carries the limit kind and
    /// the capacities under analysis.
    StateLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Which limit: stored states or simulated steps.
        kind: LimitKind,
        /// The per-channel capacities in effect (`None` = unbounded).
        capacities: Vec<Option<u64>>,
    },
    /// No storage distribution within the explored bounds yields positive
    /// throughput.
    NoPositiveThroughput,
    /// A unified-kernel analysis failed for a reason without a
    /// CSDF-specific variant.
    Analysis(AnalysisError),
}

impl fmt::Display for CsdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdfError::DuplicateActorName { name } => write!(f, "duplicate actor name {name:?}"),
            CsdfError::DuplicateChannelName { name } => {
                write!(f, "duplicate channel name {name:?}")
            }
            CsdfError::UnknownActor { name } => write!(f, "unknown actor {name:?}"),
            CsdfError::NoPhases { actor } => write!(f, "actor {actor:?} has no phases"),
            CsdfError::RateArityMismatch { channel } => write!(
                f,
                "channel {channel:?} rate vector length does not match the actor's phase count"
            ),
            CsdfError::IdlePowerExceedsActive { actor } => write!(
                f,
                "actor {actor:?} has idle power exceeding its active power"
            ),
            CsdfError::ZeroCycleRate { channel } => write!(
                f,
                "channel {channel:?} transfers no tokens over a full phase cycle"
            ),
            CsdfError::EmptyGraph => write!(f, "graph has no actors"),
            CsdfError::Inconsistent { channel } => write!(
                f,
                "graph is inconsistent: balance equation of channel {channel:?} fails"
            ),
            CsdfError::RepetitionOverflow => write!(f, "repetition vector overflows u64"),
            CsdfError::ZeroTimeLivelock => {
                write!(
                    f,
                    "zero-execution-time phases fire without bound in one step"
                )
            }
            CsdfError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            } => {
                // Render through the analysis error so the two layers
                // always report limit overruns identically.
                let e = AnalysisError::StateLimitExceeded {
                    limit: *limit,
                    kind: *kind,
                    capacities: capacities.clone(),
                };
                write!(f, "{e}")
            }
            CsdfError::NoPositiveThroughput => {
                write!(f, "no storage distribution yields positive throughput")
            }
            CsdfError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsdfError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for CsdfError {
    fn from(e: AnalysisError) -> Self {
        match e {
            AnalysisError::Graph(GraphError::Inconsistent { channel }) => {
                CsdfError::Inconsistent { channel }
            }
            AnalysisError::Graph(GraphError::RepetitionOverflow) => CsdfError::RepetitionOverflow,
            AnalysisError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            } => CsdfError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            },
            AnalysisError::ZeroTimeLivelock => CsdfError::ZeroTimeLivelock,
            other => CsdfError::Analysis(other),
        }
    }
}

impl From<CsdfError> for AnalysisError {
    fn from(e: CsdfError) -> Self {
        match e {
            CsdfError::Inconsistent { channel } => {
                AnalysisError::Graph(GraphError::Inconsistent { channel })
            }
            CsdfError::RepetitionOverflow => AnalysisError::Graph(GraphError::RepetitionOverflow),
            CsdfError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            } => AnalysisError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            },
            CsdfError::ZeroTimeLivelock => AnalysisError::ZeroTimeLivelock,
            CsdfError::Analysis(e) => e,
            // Builder-stage errors cannot arise from analyzing a built
            // graph; keep their message if one ever leaks through.
            other => AnalysisError::Graph(GraphError::Inconsistent {
                channel: other.to_string(),
            }),
        }
    }
}

/// A CSDF actor: a cyclic sequence of phases with per-phase execution
/// times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfActor {
    pub(crate) name: String,
    pub(crate) phase_times: Vec<u64>,
    /// Power drawn while any phase executes (dimensionless energy per
    /// time step; zero = unannotated). One figure covers all phases.
    pub(crate) active_power: u64,
    /// Power drawn while idle; never exceeds `active_power`.
    pub(crate) idle_power: u64,
}

impl CsdfActor {
    /// The actor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution times, one per phase.
    pub fn phase_times(&self) -> &[u64] {
        &self.phase_times
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phase_times.len()
    }

    /// Power drawn while the actor executes (any phase); zero when the
    /// graph carries no power annotations.
    pub fn active_power(&self) -> u64 {
        self.active_power
    }

    /// Power drawn while the actor is idle.
    pub fn idle_power(&self) -> u64 {
        self.idle_power
    }
}

/// A CSDF channel with per-phase rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfChannel {
    pub(crate) name: String,
    pub(crate) source: ActorId,
    pub(crate) target: ActorId,
    /// Tokens produced per phase of the source actor.
    pub(crate) production: Vec<u64>,
    /// Tokens consumed per phase of the target actor.
    pub(crate) consumption: Vec<u64>,
    pub(crate) initial_tokens: u64,
}

impl CsdfChannel {
    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The producing actor.
    pub fn source(&self) -> ActorId {
        self.source
    }

    /// The consuming actor.
    pub fn target(&self) -> ActorId {
        self.target
    }

    /// Tokens produced per source phase.
    pub fn production(&self) -> &[u64] {
        &self.production
    }

    /// Tokens consumed per target phase.
    pub fn consumption(&self) -> &[u64] {
        &self.consumption
    }

    /// Initial tokens.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Tokens produced over one full phase cycle of the source.
    pub fn cycle_production(&self) -> u64 {
        self.production.iter().sum()
    }

    /// Tokens consumed over one full phase cycle of the target.
    pub fn cycle_consumption(&self) -> u64 {
        self.consumption.iter().sum()
    }
}

/// An immutable CSDF graph.
///
/// # Examples
///
/// ```
/// use buffy_csdf::CsdfGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CsdfGraph::builder("updown");
/// // A two-phase producer: 2 tokens in its first phase, none in the second.
/// let p = b.actor("p", vec![1, 1]);
/// let c = b.actor("c", vec![2]);
/// b.channel("data", p, vec![2, 0], c, vec![1], 0)?;
/// let g = b.build()?;
/// assert_eq!(g.num_actors(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfGraph {
    pub(crate) name: String,
    pub(crate) actors: Vec<CsdfActor>,
    pub(crate) channels: Vec<CsdfChannel>,
    pub(crate) outputs: Vec<Vec<ChannelId>>,
    pub(crate) inputs: Vec<Vec<ChannelId>>,
}

impl CsdfGraph {
    /// Starts building a CSDF graph.
    pub fn builder(name: impl Into<String>) -> CsdfGraphBuilder {
        CsdfGraphBuilder {
            name: name.into(),
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The actor with the given id.
    pub fn actor(&self, id: ActorId) -> &CsdfActor {
        &self.actors[id.index()]
    }

    /// The channel with the given id.
    pub fn channel(&self, id: ChannelId) -> &CsdfChannel {
        &self.channels[id.index()]
    }

    /// Iterates `(id, actor)`.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &CsdfActor)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (ActorId::new(i), a))
    }

    /// Iterates `(id, channel)`.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &CsdfChannel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId::new(i), c))
    }

    /// All actor ids.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.actors.len()).map(ActorId::new)
    }

    /// All channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len()).map(ChannelId::new)
    }

    /// Output channels of `actor`.
    pub fn output_channels(&self, actor: ActorId) -> &[ChannelId] {
        &self.outputs[actor.index()]
    }

    /// Input channels of `actor`.
    pub fn input_channels(&self, actor: ActorId) -> &[ChannelId] {
        &self.inputs[actor.index()]
    }

    /// Finds an actor by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors
            .iter()
            .position(|a| a.name == name)
            .map(ActorId::new)
    }

    /// Finds a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId::new)
    }

    /// The default observed actor: the first actor without outputs, or the
    /// last actor.
    pub fn default_observed_actor(&self) -> ActorId {
        self.actor_ids()
            .find(|&a| self.outputs[a.index()].is_empty())
            .unwrap_or(ActorId::new(self.actors.len() - 1))
    }

    /// Converts an SDF graph into the equivalent single-phase CSDF graph.
    pub fn from_sdf(graph: &SdfGraph) -> CsdfGraph {
        let mut b = CsdfGraph::builder(graph.name());
        let ids: Vec<_> = graph
            .actors()
            .map(|(_, a)| {
                b.actor_with_power(
                    a.name(),
                    vec![a.execution_time()],
                    a.active_power(),
                    a.idle_power(),
                )
                .expect("valid SDF graph maps to valid CSDF")
            })
            .collect();
        for (_, ch) in graph.channels() {
            b.channel(
                ch.name(),
                ids[ch.source().index()],
                vec![ch.production()],
                ids[ch.target().index()],
                vec![ch.consumption()],
                ch.initial_tokens(),
            )
            .expect("valid SDF graph maps to valid CSDF");
        }
        b.build().expect("valid SDF graph maps to valid CSDF")
    }
}

/// Builder for [`CsdfGraph`].
#[derive(Debug, Clone)]
pub struct CsdfGraphBuilder {
    name: String,
    actors: Vec<CsdfActor>,
    channels: Vec<CsdfChannel>,
}

impl CsdfGraphBuilder {
    /// Adds an actor with the given per-phase execution times.
    pub fn actor(&mut self, name: impl Into<String>, phase_times: Vec<u64>) -> ActorId {
        let id = ActorId::new(self.actors.len());
        self.actors.push(CsdfActor {
            name: name.into(),
            phase_times,
            active_power: 0,
            idle_power: 0,
        });
        id
    }

    /// Adds an actor annotated with a power model: `active_power` while
    /// any phase executes, `idle_power` otherwise (both dimensionless
    /// energy per time step, shared across phases).
    ///
    /// # Errors
    ///
    /// [`CsdfError::IdlePowerExceedsActive`] when `idle_power >
    /// active_power`.
    pub fn actor_with_power(
        &mut self,
        name: impl Into<String>,
        phase_times: Vec<u64>,
        active_power: u64,
        idle_power: u64,
    ) -> Result<ActorId, CsdfError> {
        let name = name.into();
        if idle_power > active_power {
            return Err(CsdfError::IdlePowerExceedsActive { actor: name });
        }
        let id = ActorId::new(self.actors.len());
        self.actors.push(CsdfActor {
            name,
            phase_times,
            active_power,
            idle_power,
        });
        Ok(id)
    }

    /// Adds a channel with per-phase production/consumption vectors and
    /// initial tokens.
    ///
    /// # Errors
    ///
    /// Rejects unknown actors, rate vectors whose length does not match
    /// the actor's phase count, and ports that transfer no tokens over a
    /// whole cycle.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        source: ActorId,
        production: Vec<u64>,
        target: ActorId,
        consumption: Vec<u64>,
        initial_tokens: u64,
    ) -> Result<ChannelId, CsdfError> {
        let name = name.into();
        for id in [source, target] {
            if id.index() >= self.actors.len() {
                return Err(CsdfError::UnknownActor {
                    name: format!("{id}"),
                });
            }
        }
        if production.len() != self.actors[source.index()].num_phases()
            || consumption.len() != self.actors[target.index()].num_phases()
        {
            return Err(CsdfError::RateArityMismatch { channel: name });
        }
        if production.iter().sum::<u64>() == 0 || consumption.iter().sum::<u64>() == 0 {
            return Err(CsdfError::ZeroCycleRate { channel: name });
        }
        let id = ChannelId::new(self.channels.len());
        self.channels.push(CsdfChannel {
            name,
            source,
            target,
            production,
            consumption,
            initial_tokens,
        });
        Ok(id)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Rejects empty graphs, phase-less actors and duplicate names.
    pub fn build(self) -> Result<CsdfGraph, CsdfError> {
        if self.actors.is_empty() {
            return Err(CsdfError::EmptyGraph);
        }
        let mut names = HashSet::new();
        for a in &self.actors {
            if a.phase_times.is_empty() {
                return Err(CsdfError::NoPhases {
                    actor: a.name.clone(),
                });
            }
            if !names.insert(a.name.clone()) {
                return Err(CsdfError::DuplicateActorName {
                    name: a.name.clone(),
                });
            }
        }
        let mut cnames = HashSet::new();
        for c in &self.channels {
            if !cnames.insert(c.name.clone()) {
                return Err(CsdfError::DuplicateChannelName {
                    name: c.name.clone(),
                });
            }
        }
        let mut outputs = vec![Vec::new(); self.actors.len()];
        let mut inputs = vec![Vec::new(); self.actors.len()];
        for (i, c) in self.channels.iter().enumerate() {
            outputs[c.source.index()].push(ChannelId::new(i));
            inputs[c.target.index()].push(ChannelId::new(i));
        }
        Ok(CsdfGraph {
            name: self.name,
            actors: self.actors,
            channels: self.channels,
            outputs,
            inputs,
        })
    }
}

/// [`CsdfGraph`] plugs into the unified analysis kernel: the engine,
/// throughput analysis and exploration drivers in `buffy-analysis` /
/// `buffy-core` run CSDF graphs through this impl. Production rates are
/// indexed by the source actor's phase, consumption rates by the target
/// actor's phase, exactly as stored on [`CsdfChannel`].
impl DataflowSemantics for CsdfGraph {
    fn num_actors(&self) -> usize {
        CsdfGraph::num_actors(self)
    }

    fn num_channels(&self) -> usize {
        CsdfGraph::num_channels(self)
    }

    fn actor_name(&self, actor: ActorId) -> &str {
        self.actor(actor).name()
    }

    fn channel_name(&self, channel: ChannelId) -> &str {
        self.channel(channel).name()
    }

    fn channel_source(&self, channel: ChannelId) -> ActorId {
        self.channel(channel).source()
    }

    fn channel_target(&self, channel: ChannelId) -> ActorId {
        self.channel(channel).target()
    }

    fn initial_tokens(&self, channel: ChannelId) -> u64 {
        self.channel(channel).initial_tokens()
    }

    fn input_channels(&self, actor: ActorId) -> &[ChannelId] {
        CsdfGraph::input_channels(self, actor)
    }

    fn output_channels(&self, actor: ActorId) -> &[ChannelId] {
        CsdfGraph::output_channels(self, actor)
    }

    fn num_phases(&self, actor: ActorId) -> u32 {
        self.actor(actor).num_phases() as u32
    }

    fn execution_time(&self, actor: ActorId, phase: u32) -> u64 {
        self.actor(actor).phase_times()[phase as usize]
    }

    fn production(&self, channel: ChannelId, phase: u32) -> u64 {
        self.channel(channel).production()[phase as usize]
    }

    fn consumption(&self, channel: ChannelId, phase: u32) -> u64 {
        self.channel(channel).consumption()[phase as usize]
    }

    fn cycle_production(&self, channel: ChannelId) -> u64 {
        self.channel(channel).cycle_production()
    }

    fn cycle_consumption(&self, channel: ChannelId) -> u64 {
        self.channel(channel).cycle_consumption()
    }

    fn default_observed_actor(&self) -> ActorId {
        CsdfGraph::default_observed_actor(self)
    }

    fn repetition_cycles(&self) -> Result<Vec<u64>, AnalysisError> {
        let q =
            crate::repetition::CsdfRepetitionVector::compute(self).map_err(AnalysisError::from)?;
        Ok(q.as_slice().to_vec())
    }

    fn maximal_throughput(&self, observed: ActorId) -> Result<Rational, AnalysisError> {
        crate::hsdf::csdf_maximal_throughput(self, observed).map_err(AnalysisError::from)
    }

    fn channel_lower_bound(&self, channel: ChannelId) -> u64 {
        crate::explore::csdf_channel_lower_bound(self.channel(channel))
    }

    fn channel_step(&self, channel: ChannelId) -> u64 {
        crate::explore::csdf_channel_step(self.channel(channel))
    }

    fn active_power(&self, actor: ActorId) -> u64 {
        self.actor(actor).active_power()
    }

    fn idle_power(&self, actor: ActorId) -> u64 {
        self.actor(actor).idle_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![1]);
        let ch = b.channel("d", p, vec![1, 0], c, vec![1], 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.name(), "g");
        assert_eq!(g.actor(p).num_phases(), 2);
        assert_eq!(g.actor(p).phase_times(), &[1, 2]);
        assert_eq!(g.channel(ch).cycle_production(), 1);
        assert_eq!(g.channel(ch).cycle_consumption(), 1);
        assert_eq!(g.channel(ch).initial_tokens(), 2);
        assert_eq!(g.output_channels(p), &[ch]);
        assert_eq!(g.input_channels(c), &[ch]);
        assert_eq!(g.actor_by_name("c"), Some(c));
        assert_eq!(g.channel_by_name("d"), Some(ch));
        assert_eq!(g.default_observed_actor(), c);
    }

    #[test]
    fn validation_errors() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![1]);
        assert!(matches!(
            b.channel("d", p, vec![1], c, vec![1], 0),
            Err(CsdfError::RateArityMismatch { .. })
        ));
        assert!(matches!(
            b.channel("d", p, vec![0, 0], c, vec![1], 0),
            Err(CsdfError::ZeroCycleRate { .. })
        ));
        assert!(matches!(
            b.channel("d", p, vec![1, 0], ActorId::new(9), vec![1], 0),
            Err(CsdfError::UnknownActor { .. })
        ));

        let mut b = CsdfGraph::builder("g");
        b.actor("x", vec![]);
        assert!(matches!(b.build(), Err(CsdfError::NoPhases { .. })));

        let mut b = CsdfGraph::builder("g");
        b.actor("x", vec![1]);
        b.actor("x", vec![1]);
        assert!(matches!(
            b.build(),
            Err(CsdfError::DuplicateActorName { .. })
        ));

        assert!(matches!(
            CsdfGraph::builder("g").build(),
            Err(CsdfError::EmptyGraph)
        ));
    }

    #[test]
    fn power_annotation_is_carried_and_validated() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor_with_power("p", vec![1, 2], 9, 4).unwrap();
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![1, 0], c, vec![1], 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.actor(p).active_power(), 9);
        assert_eq!(g.actor(p).idle_power(), 4);
        assert_eq!(g.actor(c).active_power(), 0);
        let m: &dyn DataflowSemantics = &g;
        assert_eq!(m.active_power(p), 9);
        assert_eq!(m.idle_power(p), 4);

        let mut b = CsdfGraph::builder("g");
        assert!(matches!(
            b.actor_with_power("p", vec![1], 2, 3),
            Err(CsdfError::IdlePowerExceedsActive { .. })
        ));
    }

    #[test]
    fn from_sdf_copies_power_annotations() {
        let mut b = SdfGraph::builder("sdf");
        let x = b.actor_with_power("x", 3, 12, 5).unwrap();
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 2, y, 3, 1).unwrap();
        let csdf = CsdfGraph::from_sdf(&b.build().unwrap());
        let x = csdf.actor_by_name("x").unwrap();
        let y = csdf.actor_by_name("y").unwrap();
        assert_eq!(csdf.actor(x).active_power(), 12);
        assert_eq!(csdf.actor(x).idle_power(), 5);
        assert_eq!(csdf.actor(y).active_power(), 0);
        assert_eq!(csdf.actor(y).idle_power(), 0);
    }

    #[test]
    fn from_sdf_single_phase() {
        let mut b = SdfGraph::builder("sdf");
        let x = b.actor("x", 3);
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 2, y, 3, 1).unwrap();
        let sdf = b.build().unwrap();
        let csdf = CsdfGraph::from_sdf(&sdf);
        assert_eq!(csdf.num_actors(), 2);
        let x = csdf.actor_by_name("x").unwrap();
        assert_eq!(csdf.actor(x).phase_times(), &[3]);
        let c = csdf.channel_by_name("c").unwrap();
        assert_eq!(csdf.channel(c).production(), &[2]);
        assert_eq!(csdf.channel(c).consumption(), &[3]);
        assert_eq!(csdf.channel(c).initial_tokens(), 1);
    }

    #[test]
    fn error_messages() {
        for e in [
            CsdfError::EmptyGraph,
            CsdfError::ZeroTimeLivelock,
            CsdfError::RepetitionOverflow,
            CsdfError::StateLimitExceeded {
                limit: 3,
                kind: LimitKind::States,
                capacities: vec![Some(1)],
            },
            CsdfError::Inconsistent {
                channel: "x".into(),
            },
            CsdfError::IdlePowerExceedsActive { actor: "x".into() },
            CsdfError::NoPositiveThroughput,
            CsdfError::Analysis(AnalysisError::NotLive),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn dataflow_semantics_exposes_phases() {
        let mut b = CsdfGraph::builder("g");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![1]);
        let ch = b.channel("d", p, vec![1, 0], c, vec![1], 2).unwrap();
        let g = b.build().unwrap();
        let m: &dyn DataflowSemantics = &g;
        assert_eq!(m.num_phases(p), 2);
        assert_eq!(m.num_phases(c), 1);
        assert_eq!(m.execution_time(p, 1), 2);
        assert_eq!(m.production(ch, 0), 1);
        assert_eq!(m.production(ch, 1), 0);
        assert_eq!(m.consumption(ch, 0), 1);
        assert_eq!(m.cycle_production(ch), 1);
        assert_eq!(m.cycle_consumption(ch), 1);
        assert_eq!(m.channel_source(ch), p);
        assert_eq!(m.channel_target(ch), c);
        assert_eq!(m.initial_tokens(ch), 2);
        assert_eq!(m.default_observed_actor(), c);
        assert_eq!(g.repetition_cycles().unwrap(), vec![1, 1]);
        assert!(g.maximal_throughput(c).unwrap() > Rational::ZERO);
    }

    #[test]
    fn error_conversions_round_trip() {
        // The variants shared with the kernel map back and forth.
        let pairs = [
            (
                CsdfError::Inconsistent {
                    channel: "d".into(),
                },
                AnalysisError::Graph(GraphError::Inconsistent {
                    channel: "d".into(),
                }),
            ),
            (
                CsdfError::StateLimitExceeded {
                    limit: 7,
                    kind: LimitKind::Steps,
                    capacities: vec![Some(4), None],
                },
                AnalysisError::StateLimitExceeded {
                    limit: 7,
                    kind: LimitKind::Steps,
                    capacities: vec![Some(4), None],
                },
            ),
            (CsdfError::ZeroTimeLivelock, AnalysisError::ZeroTimeLivelock),
            (
                CsdfError::RepetitionOverflow,
                AnalysisError::Graph(GraphError::RepetitionOverflow),
            ),
        ];
        for (c, a) in pairs {
            assert_eq!(AnalysisError::from(c.clone()), a);
            assert_eq!(CsdfError::from(a), c);
        }
        // Kernel-only errors are carried verbatim.
        assert_eq!(
            CsdfError::from(AnalysisError::NotLive),
            CsdfError::Analysis(AnalysisError::NotLive)
        );
        assert_eq!(
            AnalysisError::from(CsdfError::Analysis(AnalysisError::ZeroPeriod)),
            AnalysisError::ZeroPeriod
        );
    }
}
