//! Robustness sweep for the CSDF reader: malformed SDF3 `csdf` documents
//! must yield a clean `Err`, never a panic.

use buffy_csdf::xml::read_csdf_xml;
use std::panic::{catch_unwind, AssertUnwindSafe};

const WELL_FORMED: &str = r#"<sdf3><applicationGraph name="g"><csdf name="g">
  <actor name="x"/><actor name="y"/>
  <channel name="c" srcActor="x" srcRate="2,0,1" dstActor="y" dstRate="1,1,1" initialTokens="1"/>
</csdf></applicationGraph></sdf3>"#;

fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("empty input", String::new()),
        ("truncated open tag", "<sdf3><applicationGraph".to_string()),
        ("no csdf body", "<sdf3><applicationGraph name=\"g\"/></sdf3>".to_string()),
        (
            "negative phase rate",
            WELL_FORMED.replace("srcRate=\"2,0,1\"", "srcRate=\"2,-1,1\""),
        ),
        (
            "overflowing phase rate",
            WELL_FORMED.replace("srcRate=\"2,0,1\"", "srcRate=\"2,99999999999999999999999,1\""),
        ),
        (
            "non-numeric phase rate",
            WELL_FORMED.replace("dstRate=\"1,1,1\"", "dstRate=\"1,one,1\""),
        ),
        ("empty rate list entry", WELL_FORMED.replace("dstRate=\"1,1,1\"", "dstRate=\"1,,1\"")),
        (
            "all-zero rate list",
            WELL_FORMED.replace("srcRate=\"2,0,1\"", "srcRate=\"0,0,0\""),
        ),
        (
            // Per-actor phase counts are free, but one actor's ports must
            // agree: x's first channel declares 3 phases, the second 2.
            "conflicting phase counts on one actor",
            WELL_FORMED.replace(
                "</csdf>",
                "<channel name=\"d\" srcActor=\"x\" srcRate=\"1,1\" dstActor=\"y\" dstRate=\"1,1,1\"/></csdf>",
            ),
        ),
        (
            "duplicate actor names",
            WELL_FORMED.replace("<actor name=\"y\"/>", "<actor name=\"x\"/>"),
        ),
        (
            "channel references unknown actor",
            WELL_FORMED.replace("dstActor=\"y\"", "dstActor=\"ghost\""),
        ),
        (
            "actor without a name",
            WELL_FORMED.replace("<actor name=\"x\"/>", "<actor/>"),
        ),
        (
            "channel missing rates",
            WELL_FORMED.replace(" srcRate=\"2,0,1\"", ""),
        ),
        (
            "truncated mid-channel",
            WELL_FORMED[..WELL_FORMED.find("dstActor").unwrap()].to_string(),
        ),
    ]
}

#[test]
fn malformed_documents_error_cleanly() {
    for (label, doc) in corpus() {
        let outcome = catch_unwind(AssertUnwindSafe(|| read_csdf_xml(&doc)));
        match outcome {
            Ok(Ok(_)) => panic!("{label}: malformed document parsed successfully:\n{doc}"),
            Ok(Err(_)) => {}
            Err(_) => panic!("{label}: parser panicked on:\n{doc}"),
        }
    }
}

#[test]
fn well_formed_reference_still_parses() {
    // Guard against the corpus base itself rotting: every malformed case
    // above is a one-edit mutation of a document that must stay valid.
    let g = read_csdf_xml(WELL_FORMED).expect("reference document should parse");
    assert_eq!(g.num_actors(), 2);
    assert_eq!(g.num_channels(), 1);
}
