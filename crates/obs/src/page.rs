//! The `/` landing page: one self-contained HTML document (inline CSS
//! and JS, no external assets) that polls `/status` twice a second and
//! renders the live counters and the Pareto front under construction.

/// The complete landing page served at `GET /`.
pub(crate) const INDEX_HTML: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>buffy live</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 2rem; background: #101418; color: #d8dee4; }
  h1 { font-size: 1.2rem; } h1 em { color: #7aa2f7; font-style: normal; }
  table { border-collapse: collapse; margin: 1rem 0; }
  td, th { border: 1px solid #2a313a; padding: 0.25rem 0.75rem; text-align: right; }
  th { background: #161b22; color: #9fb3c8; }
  td:first-child, th:first-child { text-align: left; }
  #phase { color: #e0af68; } #state { color: #9ece6a; }
  .muted { color: #626d7a; }
</style>
</head>
<body>
<h1><em>buffy</em> live observability &mdash; <span id="graph">&hellip;</span>
  / <span id="algorithm">&hellip;</span></h1>
<p>phase <span id="phase">&mdash;</span> &middot; <span id="state">running</span>
  &middot; elapsed <span id="elapsed">0</span>s</p>
<table>
  <tbody id="counters"></tbody>
</table>
<h1>Pareto front (<span id="front-size">0</span> points)</h1>
<table>
  <thead><tr><th>size</th><th>throughput</th><th>distribution</th></tr></thead>
  <tbody id="front"></tbody>
</table>
<p class="muted">Endpoints: <a href="/status">/status</a> &middot;
  <a href="/metrics">/metrics</a> &middot; <a href="/events">/events</a> &middot;
  <a href="/healthz">/healthz</a></p>
<script>
const COUNTERS = ["evaluations", "cache_hits", "static_prunes",
  "dominance_prunes", "warm_starts", "failures", "pareto_accepted",
  "events_dropped"];
function esc(s) { const d = document.createElement("span");
  d.textContent = String(s); return d.innerHTML; }
async function tick() {
  let s;
  try { s = await (await fetch("/status")).json(); }
  catch (e) { document.getElementById("state").textContent = "unreachable"; return; }
  document.getElementById("graph").textContent = s.graph;
  document.getElementById("algorithm").textContent = s.algorithm;
  document.getElementById("phase").textContent = s.phase ?? "—";
  document.getElementById("state").textContent = s.finished ? "finished" : "running";
  document.getElementById("elapsed").textContent = (s.elapsed_us / 1e6).toFixed(1);
  document.getElementById("counters").innerHTML = COUNTERS.map(k =>
    `<tr><td>${k}</td><td>${esc(s[k])}</td></tr>`).join("") +
    (s.budget_evaluations_remaining == null ? "" :
      `<tr><td>budget remaining</td><td>${esc(s.budget_evaluations_remaining)}</td></tr>`);
  document.getElementById("front-size").textContent = s.front.length;
  document.getElementById("front").innerHTML = s.front.map(p =>
    `<tr><td>${esc(p.size)}</td><td>${esc(p.throughput)}</td><td>[${p.distribution.map(esc).join(", ")}]</td></tr>`).join("");
}
tick();
setInterval(tick, 500);
</script>
</body>
</html>
"#;
