//! Minimal HTTP/1.1 plumbing for the embedded observability server.
//!
//! Just enough protocol to serve `curl`, a browser tab and a Prometheus
//! scraper: parse the request line of a `GET`, write a fixed-status
//! response with `Content-Length`, and close. Anything fancier
//! (keep-alive, chunked bodies, TLS) is deliberately out of scope — the
//! server binds loopback-style addresses for a single operator.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request head (request line + headers) we are willing to
/// buffer before giving up on a client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a handler waits for a slow client to finish sending its
/// request head before the connection is dropped.
pub(crate) const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request line: method and path (query string stripped).
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Request {
    /// The HTTP method verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// The request path without any `?query` suffix.
    pub path: String,
}

/// Reads and parses the request head from `stream`.
///
/// Returns `None` on malformed input, timeout, or a head exceeding
/// [`MAX_REQUEST_BYTES`] — the caller just drops the connection.
pub(crate) fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&buf) {
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some(Request { method, path })
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Writes a complete response with `Content-Length` and closes implied.
pub(crate) fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\nCache-Control: no-cache\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes the response head for a Server-Sent-Events stream; the body is
/// streamed by the caller until the run ends or the client goes away.
pub(crate) fn respond_sse_head(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// 404 with a plain-text body.
pub(crate) fn not_found(stream: &mut TcpStream) {
    respond(
        stream,
        "404 Not Found",
        "text/plain; charset=utf-8",
        "not found\n",
    );
}

/// 405 with a plain-text body (only `GET` is served).
pub(crate) fn method_not_allowed(stream: &mut TcpStream) {
    respond(
        stream,
        "405 Method Not Allowed",
        "text/plain; charset=utf-8",
        "only GET is supported\n",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_completion_detects_terminator() {
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
    }
}
