//! # buffy-obs
//!
//! The embedded live-observability server: the first slice of `buffy
//! serve` (ROADMAP item 1). A search started with `--serve ADDR` is no
//! longer a black box — while the drivers run, this crate serves:
//!
//! - `GET /metrics` — a live Prometheus scrape, rendered from a fresh
//!   [`Recorder`] snapshot on every request;
//! - `GET /events` — a Server-Sent-Events stream that first replays the
//!   bounded [`EventRing`] of observer events and then tails the live
//!   phase/evaluation/prune/pareto stream until the terminal `end` event;
//! - `GET /status` — a JSON point-in-time snapshot of the run
//!   (graph, algorithm, current phase, counters, front, budget, elapsed);
//! - `GET /healthz` — liveness probe;
//! - `GET /` — a self-contained HTML page polling `/status`.
//!
//! Everything is `std`-only: a [`std::net::TcpListener`], a small fixed
//! thread pool, and hand-rolled HTTP/1.1 — the workspace stays
//! dependency-free. The server is strictly an *observer*: it reads the
//! lock-free [`LiveStats`], the event ring and the recorder, and feeds
//! nothing back into the search, so a served run produces byte-identical
//! fronts and statistics to an unserved one at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod page;

use buffy_core::{EventRing, LiveEvent, LiveStats, ParetoPoint};
use buffy_telemetry::{names, Recorder};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler threads in the pool. One may be pinned by a long-lived
/// `/events` stream; the rest keep scrapes and status polls responsive.
const POOL_SIZE: usize = 4;

/// How often the accept loop polls for shutdown, and how often an SSE
/// tail polls the ring for fresh events.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Everything the request handlers read: identity of the run plus shared
/// handles into the live observation surface.
///
/// All fields are either immutable or internally synchronized, so one
/// instance is shared by every handler thread.
pub struct ServeState {
    /// Name of the graph being explored.
    pub graph: String,
    /// The driving algorithm/command (`"explore"`, `"constraint"`, …).
    pub algorithm: String,
    /// Live counters, phase and front mirror (from a `LiveObserver`).
    pub stats: Arc<LiveStats>,
    /// Bounded observer-event ring (from the same `LiveObserver`).
    pub ring: Arc<EventRing>,
    /// The run's recorder; `/metrics` snapshots it per scrape.
    pub recorder: Arc<Recorder>,
    /// Evaluation budget (`--max-evals`) when one was set.
    pub budget_evaluations: Option<u64>,
}

/// The running server: an accept loop plus a small pool of handler
/// threads.
///
/// Dropping the server (or calling [`shutdown`](ObsServer::shutdown))
/// stops accepting, lets in-flight handlers finish their current
/// response, and joins every thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `state`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address, …).
    pub fn start(addr: &str, state: ServeState) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(state);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(POOL_SIZE);
        for i in 0..POOL_SIZE {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("buffy-obs-{i}"))
                    .spawn(move || loop {
                        let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        match conn {
                            Ok(mut stream) => handle(&mut stream, &state, &stop),
                            Err(_) => return, // accept loop gone: drain done
                        }
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("buffy-obs-accept".to_string())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if tx.send(stream).is_err() {
                                return;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
                // Dropping `tx` here closes the channel; idle workers
                // observe the disconnect and exit after the drain.
            })?;

        Ok(ObsServer {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address — the actual port when `addr` asked for `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins every server thread.
    /// In-flight responses (including `/events` streams) are given until
    /// their next poll tick to observe the stop flag.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Routes one connection. Only `GET` is served; unknown paths 404.
fn handle(stream: &mut TcpStream, state: &ServeState, stop: &AtomicBool) {
    let Some(req) = http::read_request(stream) else {
        return;
    };
    if req.method != "GET" {
        http::method_not_allowed(stream);
        return;
    }
    match req.path.as_str() {
        "/" => http::respond(
            stream,
            "200 OK",
            "text/html; charset=utf-8",
            page::INDEX_HTML,
        ),
        "/healthz" => http::respond(stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => http::respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &state.recorder.prometheus(),
        ),
        "/status" => http::respond(
            stream,
            "200 OK",
            "application/json; charset=utf-8",
            &status_json(state),
        ),
        "/events" => stream_events(stream, state, stop),
        _ => http::not_found(stream),
    }
}

/// Renders the `/status` snapshot.
///
/// The counters come from the lock-free [`LiveStats`] (each value exact,
/// cross-counter skew bounded by in-flight events); warm starts are read
/// from the recorder, which is where the pipeline counts them.
fn status_json(state: &ServeState) -> String {
    let stats = &state.stats;
    let warm_starts = state
        .recorder
        .snapshot()
        .counters
        .get(names::WARM_STARTS)
        .copied()
        .unwrap_or(0);
    let evaluations = stats.evaluations();
    let budget = match state.budget_evaluations {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let remaining = match state.budget_evaluations {
        Some(b) => b.saturating_sub(evaluations).to_string(),
        None => "null".to_string(),
    };
    let front: Vec<String> = stats.front().iter().map(front_point_json).collect();
    format!(
        "{{\"graph\":\"{}\",\"algorithm\":\"{}\",\"phase\":{},\"finished\":{},\
         \"elapsed_us\":{},\"evaluations\":{evaluations},\"cache_hits\":{},\
         \"static_prunes\":{},\"dominance_prunes\":{},\"warm_starts\":{warm_starts},\
         \"failures\":{},\"pareto_accepted\":{},\"front_size\":{},\
         \"budget_evaluations\":{budget},\"budget_evaluations_remaining\":{remaining},\
         \"events_dropped\":{},\"front\":[{}]}}",
        json_escape(&state.graph),
        json_escape(&state.algorithm),
        match stats.phase_name() {
            Some(name) => format!("\"{name}\""),
            None => "null".to_string(),
        },
        stats.is_finished(),
        stats.elapsed_us(),
        stats.cache_hits(),
        stats.static_prunes(),
        stats.dominance_prunes(),
        stats.failures(),
        stats.pareto_accepted(),
        stats.front_size(),
        state.ring.dropped(),
        front.join(",")
    )
}

fn front_point_json(point: &ParetoPoint) -> String {
    format!(
        "{{\"size\":{},\"throughput\":\"{}\",\"distribution\":{}}}",
        point.size,
        point.throughput,
        capacities_json(point.distribution.as_slice())
    )
}

/// Streams `/events`: replays the ring from the beginning, then tails it
/// until the terminal `end` event, server shutdown, or the client going
/// away.
fn stream_events(stream: &mut TcpStream, state: &ServeState, stop: &AtomicBool) {
    if http::respond_sse_head(stream).is_err() {
        return;
    }
    let mut cursor = 0u64;
    let mut announced_drop = false;
    loop {
        if !announced_drop {
            let dropped = state.ring.dropped();
            if dropped > 0 {
                // The ring wrapped before this client connected: say so
                // instead of silently replaying a truncated history.
                let frame = format!("event: gap\ndata: {{\"dropped\":{dropped}}}\n\n");
                if stream.write_all(frame.as_bytes()).is_err() {
                    return;
                }
            }
            announced_drop = true;
        }
        let batch = state.ring.since(cursor);
        for (seq, event) in &batch {
            cursor = seq + 1;
            if stream.write_all(sse_frame(*seq, event).as_bytes()).is_err() {
                return;
            }
            if matches!(event, LiveEvent::End { .. }) {
                let _ = stream.flush();
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if batch.is_empty() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// Renders one ring entry as an SSE frame: `id` is the ring sequence
/// number, `event` the stable kind name, `data` a single JSON object in
/// the same vocabulary as the CLI's `--trace-json` records.
fn sse_frame(seq: u64, event: &LiveEvent) -> String {
    let data = match event {
        LiveEvent::Phase { name } => format!("{{\"phase\":\"{name}\"}}"),
        LiveEvent::Evaluation {
            capacities,
            size,
            throughput,
            states,
            nanos,
        } => format!(
            "{{\"distribution\":{},\"size\":{size},\"throughput\":\"{throughput}\",\"states\":{states},\"nanos\":{nanos}}}",
            capacities_json(capacities)
        ),
        LiveEvent::CacheHit { capacities } => {
            format!("{{\"distribution\":{}}}", capacities_json(capacities))
        }
        LiveEvent::Pruned { capacities, kind } => format!(
            "{{\"distribution\":{},\"kind\":\"{kind}\"}}",
            capacities_json(capacities)
        ),
        LiveEvent::Pareto {
            capacities,
            size,
            throughput,
        } => format!(
            "{{\"size\":{size},\"throughput\":\"{throughput}\",\"distribution\":{}}}",
            capacities_json(capacities)
        ),
        LiveEvent::Failed {
            capacities,
            message,
        } => format!(
            "{{\"distribution\":{},\"message\":\"{}\"}}",
            capacities_json(capacities),
            json_escape(message)
        ),
        LiveEvent::End { reason } => format!("{{\"reason\":\"{}\"}}", json_escape(reason)),
    };
    format!("id: {seq}\nevent: {}\ndata: {data}\n\n", event.kind())
}

fn capacities_json(capacities: &[u64]) -> String {
    let mut out = String::with_capacity(capacities.len() * 4 + 2);
    out.push('[');
    for (i, c) in capacities.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_core::LiveObserver;
    use buffy_core::SearchPhase;
    use buffy_graph::{Rational, StorageDistribution};
    use std::io::{BufRead, BufReader, Read};

    fn test_state(live: &LiveObserver, recorder: Arc<Recorder>) -> ServeState {
        ServeState {
            graph: "example".to_string(),
            algorithm: "explore".to_string(),
            stats: live.stats(),
            ring: live.ring(),
            recorder,
            budget_evaluations: Some(100),
        }
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        response
    }

    fn feed_events(live: &LiveObserver) {
        use buffy_core::ExploreObserver;
        let dist = StorageDistribution::from_capacities(vec![4, 2]);
        live.phase_started(SearchPhase::Bounds);
        live.evaluation_finished(&dist, Rational::new(1, 2), 7, 100);
        live.pareto_accepted(&buffy_core::ParetoPoint::new(
            dist.clone(),
            Rational::new(1, 2),
        ));
    }

    #[test]
    fn serves_health_metrics_status_and_page() {
        let live = LiveObserver::new();
        feed_events(&live);
        let recorder = Arc::new(Recorder::new());
        recorder.counter(names::WARM_STARTS, "warm starts").add(3);
        let mut server =
            ObsServer::start("127.0.0.1:0", test_state(&live, recorder)).expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("# TYPE buffy_warm_start_seeded_total counter"),
            "{metrics}"
        );
        assert!(
            metrics.contains("buffy_warm_start_seeded_total 3"),
            "{metrics}"
        );

        let status = get(addr, "/status");
        assert!(status.contains("\"graph\":\"example\""), "{status}");
        assert!(status.contains("\"phase\":\"bounds\""), "{status}");
        assert!(status.contains("\"evaluations\":1"), "{status}");
        assert!(status.contains("\"warm_starts\":3"), "{status}");
        assert!(
            status.contains("\"budget_evaluations_remaining\":99"),
            "{status}"
        );
        assert!(
            status
                .contains("\"front\":[{\"size\":6,\"throughput\":\"1/2\",\"distribution\":[4,2]}]"),
            "{status}"
        );

        let page = get(addr, "/");
        assert!(page.contains("text/html"), "{page}");
        assert!(page.contains("buffy live"), "{page}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn events_replays_ring_then_ends() {
        let live = LiveObserver::new();
        feed_events(&live);
        let recorder = Arc::new(Recorder::new());
        let mut server =
            ObsServer::start("127.0.0.1:0", test_state(&live, recorder)).expect("bind");
        let addr = server.local_addr();

        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write request");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("head line");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        assert!(head.contains("text/event-stream"), "{head}");

        // The replayed history arrives immediately; the end event only
        // after finish() — published while the stream is already open.
        live.finish("exhausted");
        let mut body = String::new();
        reader.read_to_string(&mut body).expect("stream to end");
        assert!(
            body.contains("event: phase\ndata: {\"phase\":\"bounds\"}"),
            "{body}"
        );
        assert!(body.contains("event: evaluation\n"), "{body}");
        assert!(body.contains("\"throughput\":\"1/2\""), "{body}");
        assert!(body.contains("event: pareto\n"), "{body}");
        assert!(
            body.contains("event: end\ndata: {\"reason\":\"exhausted\"}"),
            "{body}"
        );
        // Well-formed SSE: every frame is an id/event/data triple
        // terminated by a blank line.
        let frames = body.matches("id: ").count();
        assert_eq!(body.matches("event: ").count(), frames);
        assert_eq!(body.matches("data: ").count(), frames);
        assert_eq!(body.matches("\n\n").count(), frames);

        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_open_event_streams() {
        let live = LiveObserver::new();
        let recorder = Arc::new(Recorder::new());
        let mut server =
            ObsServer::start("127.0.0.1:0", test_state(&live, recorder)).expect("bind");
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write request");
        // Give the handler a moment to enter the tail loop, then stop.
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        let mut rest = String::new();
        conn.read_to_string(&mut rest).expect("stream closed");
    }

    #[test]
    fn non_get_is_rejected() {
        let live = LiveObserver::new();
        let recorder = Arc::new(Recorder::new());
        let mut server =
            ObsServer::start("127.0.0.1:0", test_state(&live, recorder)).expect("bind");
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"POST /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }
}
