//! SIGINT handling: converts the first Ctrl-C into cooperative
//! cancellation.
//!
//! The exploration commands register their [`CancelToken`] through
//! [`watch`]. The first `watch` call installs a minimal SIGINT handler
//! (the only unsafe code in the binary — a self-declared `signal(2)`
//! binding, no external crate) that merely sets an atomic flag; a watcher
//! thread polls the flag every ~20 ms and cancels every registered token
//! with [`CancelReason::Interrupt`]. The run then winds down
//! cooperatively — partial front, flushed trace, saved checkpoint — and
//! exits with status 130. The handler re-arms the default disposition
//! after the first signal, so a second Ctrl-C terminates the process
//! immediately if the graceful path hangs.
//!
//! On non-Unix targets [`watch`] is a no-op.

use buffy_core::CancelToken;
use std::sync::Arc;

/// Registers a token to be cancelled when SIGINT arrives, installing the
/// process-wide handler on first use.
pub fn watch(token: &Arc<CancelToken>) {
    imp::watch(token);
}

#[cfg(unix)]
#[allow(unsafe_code)] // the `signal(2)` binding below — the only unsafe in the binary
mod imp {
    use buffy_core::{CancelReason, CancelToken};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, Weak};
    use std::time::Duration;

    /// Set by the signal handler, drained by the watcher thread.
    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Restore the default disposition: a second Ctrl-C kills the
        // process outright instead of being swallowed. `signal` is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    fn tokens() -> &'static Mutex<Vec<Weak<CancelToken>>> {
        static TOKENS: OnceLock<Mutex<Vec<Weak<CancelToken>>>> = OnceLock::new();
        TOKENS.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub fn watch(token: &Arc<CancelToken>) {
        if let Ok(mut list) = tokens().lock() {
            list.retain(|t| t.strong_count() > 0);
            list.push(Arc::downgrade(token));
        }
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            unsafe {
                signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
            }
            std::thread::spawn(|| loop {
                if INTERRUPTED.swap(false, Ordering::SeqCst) {
                    if let Ok(mut list) = tokens().lock() {
                        for token in list.drain(..).filter_map(|t| t.upgrade()) {
                            token.cancel(CancelReason::Interrupt);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            });
        });
    }
}

#[cfg(not(unix))]
mod imp {
    use buffy_core::CancelToken;
    use std::sync::Arc;

    pub fn watch(_token: &Arc<CancelToken>) {}
}

#[cfg(all(test, unix))]
#[allow(unsafe_code)] // delivers a real SIGINT to the test process via raise(2)
mod tests {
    use super::*;
    use buffy_core::CancelReason;
    use std::time::{Duration, Instant};

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigint_cancels_watched_tokens() {
        let token = Arc::new(CancelToken::new());
        watch(&token);
        // Deliver a real SIGINT to ourselves; the installed handler
        // swallows it and the watcher thread cancels the token.
        unsafe {
            raise(2);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(token.check(), Some(CancelReason::Interrupt));
    }
}
