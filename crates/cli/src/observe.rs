//! Progress reporting, JSON-lines tracing and checkpointing for the
//! exploration commands.
//!
//! [`CliObserver`] implements the kernel's
//! [`ExploreObserver`](buffy_core::ExploreObserver) and fans each event out
//! to up to three sinks:
//!
//! - `--progress`: human-readable status on **stderr** (phase transitions,
//!   evaluation counts, accepted Pareto points) — stdout stays reserved
//!   for the command's actual output. High-frequency lines are throttled
//!   to roughly ten per second on a monotonic clock so a fast exploration
//!   cannot flood the terminal; phase transitions, failures and the final
//!   summary always print. Each line carries the evaluation rate, and —
//!   when the command pre-counted the realizable
//!   [`DistributionSpace`](buffy_core::DistributionSpace) — the percent
//!   of that space already covered (evaluated, cache-answered or pruned)
//!   plus an ETA extrapolated from the coverage rate;
//! - `--trace-json <file>`: one JSON object per line (JSON-lines). Every
//!   event leads with `elapsed_us`, microseconds on the monotonic clock
//!   since the observer (and hence the run) was created. Each line is
//!   written with a single `write_all` call as it happens, so an
//!   interrupted or failing run never leaves a truncated object behind,
//!   and [`CliObserver::finish`] appends a final
//!   `{"event":"end","reason":…}` record on every exit path;
//! - `--checkpoint <file>`: the completed evaluations accumulate into a
//!   [`Checkpoint`] that is re-saved (atomically, via a temporary file)
//!   every [`CHECKPOINT_EVERY`] evaluations and once more at `finish`.
//!
//! The trace vocabulary (the `event` field): `phase`, `evaluation`,
//! `cache-hit`, `pruned`, `pareto`, `evaluation-failed`, `end`. All values are
//! numbers, fixed enum names, rationals rendered as `"p/q"`, or
//! JSON-escaped strings.

use buffy_core::{
    Checkpoint, CheckpointEntry, ExploreObserver, FaultPlan, ObjectiveSpace, ParetoPoint,
    PruneKind, SearchPhase,
};
use buffy_graph::{Rational, StorageDistribution};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Minimum spacing between throttled `--progress` lines, in microseconds
/// of monotonic time (~10 lines per second).
const PROGRESS_INTERVAL_US: u64 = 100_000;

/// How many evaluations between periodic checkpoint saves.
const CHECKPOINT_EVERY: u64 = 64;

/// Save attempts per checkpoint before giving up (transient I/O errors —
/// a full disk clearing, a journald fsync stall — often resolve within a
/// retry or two; persistent ones never will).
const SAVE_ATTEMPTS: u32 = 3;

/// Backoff between checkpoint save attempts, doubled each retry.
const SAVE_BACKOFF: Duration = Duration::from_millis(10);

/// Where and what to checkpoint (`--checkpoint`).
pub struct CheckpointConfig {
    /// Target file.
    pub path: PathBuf,
    /// Fingerprint of the graph under exploration.
    pub fingerprint: u64,
    /// Channel count of the graph (arity of every entry).
    pub channels: usize,
    /// Objective space of the run, recorded in the checkpoint header so a
    /// resume can refuse a mismatched `--objectives`.
    pub objectives: ObjectiveSpace,
    /// Deterministic fault schedule for the save path (torn writes,
    /// failed renames); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

struct CheckpointSink {
    path: PathBuf,
    checkpoint: Checkpoint,
    since_save: u64,
    faults: Option<Arc<FaultPlan>>,
    /// Set after a save exhausts its retries: the run continues
    /// uncheckpointed, and no further saves are attempted.
    disabled: bool,
}

impl CheckpointSink {
    /// Saves the checkpoint with bounded retry-with-backoff. A save that
    /// exhausts its attempts does NOT abort the exploration: the sink
    /// disables itself, warns once on stderr, and bumps the
    /// `buffy_checkpoint_save_failures_total` counter. Returns whether
    /// the checkpoint reached disk.
    fn save(&mut self) -> bool {
        if self.disabled {
            return false;
        }
        self.since_save = 0;
        let mut backoff = SAVE_BACKOFF;
        let mut last_error = String::new();
        for attempt in 0..SAVE_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            match self
                .checkpoint
                .save_with(&self.path, self.faults.as_deref())
            {
                Ok(()) => return true,
                Err(e) => last_error = e.to_string(),
            }
        }
        self.disabled = true;
        eprintln!(
            "[buffy] warning: checkpoint save to {} failed after {SAVE_ATTEMPTS} attempts \
             ({last_error}); continuing uncheckpointed",
            self.path.display()
        );
        if let Some(recorder) = buffy_telemetry::active() {
            recorder
                .counter(
                    buffy_telemetry::names::CHECKPOINT_SAVE_FAILURES,
                    "Checkpoint saves that failed after exhausting the retry budget.",
                )
                .inc();
        }
        false
    }
}

/// Observer wired to the `--progress`, `--trace-json` and `--checkpoint`
/// options.
pub struct CliObserver {
    progress: bool,
    /// Run-start instant: origin of every `elapsed_us` trace field and of
    /// the progress throttle.
    start: Instant,
    /// Monotonic micros of the last throttled progress line
    /// (`u64::MAX` = none emitted yet).
    progress_last_us: AtomicU64,
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    prunes: AtomicU64,
    /// Total realizable candidates in the search window, when the command
    /// pre-counted them (`--progress` only): the denominator of the
    /// percent-covered and ETA annotations.
    space_total: Option<u64>,
    trace: Option<Mutex<File>>,
    checkpoint: Option<Mutex<CheckpointSink>>,
    /// Whether [`finish`](CliObserver::finish) ran. The [`Drop`] guard
    /// checks it so the trace gets its final `end` record on *every*
    /// exit path, including panics unwinding past the observer.
    finished: AtomicBool,
}

impl CliObserver {
    /// Builds the observer from the parsed options.
    ///
    /// # Errors
    ///
    /// Returns a message when the `--trace-json` path cannot be created
    /// (missing directory, no permission, …) — the command refuses to run
    /// rather than silently dropping the trace.
    pub fn from_options(
        progress: bool,
        trace_path: Option<&str>,
        checkpoint: Option<CheckpointConfig>,
    ) -> Result<CliObserver, String> {
        let trace = match trace_path {
            None => None,
            Some(path) => {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
                Some(Mutex::new(file))
            }
        };
        let checkpoint = checkpoint.map(|config| {
            let mut checkpoint = Checkpoint::new(config.fingerprint, config.channels);
            checkpoint.objectives = config.objectives;
            Mutex::new(CheckpointSink {
                path: config.path,
                checkpoint,
                since_save: 0,
                faults: config.faults,
                disabled: false,
            })
        });
        Ok(CliObserver {
            progress,
            start: Instant::now(),
            progress_last_us: AtomicU64::new(u64::MAX),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            prunes: AtomicU64::new(0),
            space_total: None,
            trace,
            checkpoint,
            finished: AtomicBool::new(false),
        })
    }

    /// An observer with every output disabled: no progress, no trace, no
    /// checkpoint. Used for reference runs (e.g. `buffy chaos`) that only
    /// need the exploration result.
    pub fn quiet() -> CliObserver {
        CliObserver::from_options(false, None, None)
            .expect("an output-free observer cannot fail to build")
    }

    /// Attaches the pre-counted size of the realizable candidate space,
    /// enabling the percent-covered and ETA progress annotations.
    pub fn with_space_total(mut self, total: Option<u64>) -> CliObserver {
        self.space_total = total;
        self
    }

    /// The dynamic tail of a progress line: evaluation rate, and — when
    /// the candidate space was pre-counted — percent covered plus an ETA
    /// extrapolated from the coverage rate (evaluations, cache hits and
    /// prunes all cover candidates).
    fn progress_suffix(&self) -> String {
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-6);
        let evals = self.evaluations.load(Ordering::Relaxed);
        let mut out = format!(", {:.0} evals/s", evals as f64 / elapsed);
        if let Some(total) = self.space_total {
            let covered = evals
                + self.cache_hits.load(Ordering::Relaxed)
                + self.prunes.load(Ordering::Relaxed);
            let pct = if total == 0 {
                100.0
            } else {
                100.0 * covered.min(total) as f64 / total as f64
            };
            let _ = write!(out, ", {pct:.1}% of space");
            let rate = covered as f64 / elapsed;
            // No ETA once the run is over (the final summary reuses this
            // suffix) or before any candidate was covered.
            if covered > 0 && covered < total && !self.finished.load(Ordering::Relaxed) {
                let eta = (total - covered) as f64 / rate;
                let _ = write!(out, ", ETA {eta:.0}s");
            }
        }
        out
    }

    /// Whether a throttled progress line may print now. Lossy under
    /// contention by design: when two threads race the interval, one line
    /// wins and the other is simply skipped.
    fn progress_tick(&self) -> bool {
        if !self.progress {
            return false;
        }
        let now = self.start.elapsed().as_micros() as u64;
        let last = self.progress_last_us.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < PROGRESS_INTERVAL_US {
            return false;
        }
        self.progress_last_us
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    fn trace_line(&self, line: std::fmt::Arguments<'_>) {
        if let Some(trace) = &self.trace {
            // One write_all per complete line: a crash between events never
            // leaves a JSON object cut in half. Every event object leads
            // with the run's monotonic clock.
            let body = line.to_string();
            let rest = body.strip_prefix('{').unwrap_or(&body);
            let text = format!(
                "{{\"elapsed_us\":{},{rest}\n",
                self.start.elapsed().as_micros() as u64
            );
            if let Ok(mut writer) = trace.lock() {
                let _ = writer.write_all(text.as_bytes());
            }
        }
    }

    /// Closes the run: appends the trace's final
    /// `{"event":"end","reason":…}` record and saves the checkpoint one
    /// last time. Call exactly once, on every exit path — `reason` is
    /// `"exact"` for complete runs, the cancellation reason's name for
    /// truncated ones, `"error"` when the run failed. Exit paths that
    /// never reach an explicit `finish` (a panic unwinding past the
    /// observer) are covered by the [`Drop`] guard, which closes the
    /// trace with reason `"aborted"`.
    ///
    /// # Errors
    ///
    /// Returns a message when the trace cannot be written. A failing
    /// checkpoint save is NOT an error: the sink has already retried
    /// with backoff, warned on stderr and counted the failure — an
    /// exploration's results must not be discarded because its
    /// checkpoint could not be.
    pub fn finish(&self, reason: &str) -> Result<(), String> {
        self.finished.store(true, Ordering::Relaxed);
        if self.progress {
            // The final summary is never throttled.
            eprintln!(
                "[buffy] finished ({reason}): {} analyses, {} cache hits{}",
                self.evaluations.load(Ordering::Relaxed),
                self.cache_hits.load(Ordering::Relaxed),
                self.progress_suffix()
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"end\",\"reason\":\"{}\"}}",
            json_escape(reason)
        ));
        if let Some(trace) = &self.trace {
            let mut writer = trace.lock().map_err(|_| "trace writer poisoned")?;
            writer
                .flush()
                .map_err(|e| format!("cannot write trace file: {e}"))?;
        }
        if let Some(checkpoint) = &self.checkpoint {
            let mut sink = checkpoint.lock().map_err(|_| "checkpoint sink poisoned")?;
            sink.save();
        }
        Ok(())
    }
}

impl Drop for CliObserver {
    /// The trace contract's last line of defence: if the run never
    /// reached [`finish`](CliObserver::finish) — a contained panic
    /// re-raised by the command layer, an early `?` on an unrelated
    /// error — the trace still ends with a well-formed
    /// `{"event":"end","reason":"aborted"}` record and the checkpoint
    /// gets a best-effort final save.
    fn drop(&mut self) {
        if self.finished.swap(true, Ordering::Relaxed) {
            return;
        }
        self.trace_line(format_args!("{{\"event\":\"end\",\"reason\":\"aborted\"}}"));
        if let Some(trace) = &self.trace {
            if let Ok(mut writer) = trace.lock() {
                let _ = writer.flush();
            }
        }
        if let Some(checkpoint) = &self.checkpoint {
            if let Ok(mut sink) = checkpoint.lock() {
                sink.save();
            }
        }
    }
}

/// Renders a distribution's capacities as a JSON array.
pub(crate) fn dist_json(dist: &StorageDistribution) -> String {
    let caps: Vec<String> = dist.as_slice().iter().map(u64::to_string).collect();
    format!("[{}]", caps.join(","))
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ExploreObserver for CliObserver {
    fn phase_started(&self, phase: SearchPhase) {
        if self.progress {
            eprintln!("[buffy] phase: {}", phase.name());
        }
        self.trace_line(format_args!(
            "{{\"event\":\"phase\",\"phase\":\"{}\"}}",
            phase.name()
        ));
    }

    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        let n = self.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress_tick() {
            eprintln!(
                "[buffy] {n} analyses, {} cache hits{}",
                self.cache_hits.load(Ordering::Relaxed),
                self.progress_suffix()
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"evaluation\",\"distribution\":{},\"size\":{},\"throughput\":\"{}\",\"states\":{},\"nanos\":{}}}",
            dist_json(dist),
            dist.size(),
            throughput,
            states,
            nanos
        ));
        if let Some(checkpoint) = &self.checkpoint {
            if let Ok(mut sink) = checkpoint.lock() {
                sink.checkpoint.entries.push(CheckpointEntry {
                    capacities: dist.as_slice().to_vec(),
                    throughput,
                    states,
                });
                sink.since_save += 1;
                if sink.since_save >= CHECKPOINT_EVERY {
                    sink.save();
                }
            }
        }
    }

    fn evaluation_failed(&self, dist: &StorageDistribution, message: &str) {
        if self.progress {
            eprintln!("[buffy] evaluation of {dist} failed: {message}");
        }
        self.trace_line(format_args!(
            "{{\"event\":\"evaluation-failed\",\"distribution\":{},\"message\":\"{}\"}}",
            dist_json(dist),
            json_escape(message)
        ));
    }

    fn cache_hit(&self, dist: &StorageDistribution) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.trace_line(format_args!(
            "{{\"event\":\"cache-hit\",\"distribution\":{}}}",
            dist_json(dist)
        ));
    }

    fn distribution_pruned(&self, dist: &StorageDistribution, kind: PruneKind) {
        self.prunes.fetch_add(1, Ordering::Relaxed);
        self.trace_line(format_args!(
            "{{\"event\":\"pruned\",\"kind\":\"{}\",\"distribution\":{}}}",
            kind.name(),
            dist_json(dist)
        ));
    }

    fn pareto_accepted(&self, point: &ParetoPoint) {
        if self.progress_tick() {
            eprintln!(
                "[buffy] pareto point: size {} throughput {}",
                point.size, point.throughput
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"pareto\",\"size\":{},\"throughput\":\"{}\",\"distribution\":{}}}",
            point.size,
            point.throughput,
            dist_json(&point.distribution)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncreatable_trace_path_is_a_proper_error() {
        let err = CliObserver::from_options(false, Some("/nonexistent-dir/trace.jsonl"), None)
            .err()
            .expect("creating a trace in a missing directory must fail");
        assert!(err.contains("cannot create trace file"), "{err}");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let path = std::env::temp_dir().join("buffy-observe-test-trace.jsonl");
        let obs = CliObserver::from_options(false, Some(path.to_str().unwrap()), None).unwrap();
        obs.phase_started(SearchPhase::Bounds);
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 1234);
        obs.cache_hit(&d);
        obs.distribution_pruned(&d, PruneKind::Static);
        obs.evaluation_failed(&d, "panicked: \"why\"");
        obs.pareto_accepted(&ParetoPoint::new(d, Rational::new(1, 7)));
        obs.finish("exact").unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"event\":\"phase\""), "{}", lines[0]);
        assert!(
            lines[1].contains("\"event\":\"evaluation\"")
                && lines[1].contains("\"distribution\":[4,2]")
                && lines[1].contains("\"throughput\":\"1/7\""),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"event\":\"cache-hit\""), "{}", lines[2]);
        assert!(
            lines[3].contains("\"event\":\"pruned\"")
                && lines[3].contains("\"kind\":\"static-bound\"")
                && lines[3].contains("\"distribution\":[4,2]"),
            "{}",
            lines[3]
        );
        assert!(
            lines[4].contains("\"event\":\"evaluation-failed\"")
                && lines[4].contains("panicked: \\\"why\\\""),
            "{}",
            lines[4]
        );
        assert!(
            lines[5].contains("\"event\":\"pareto\"") && lines[5].contains("\"size\":6"),
            "{}",
            lines[5]
        );
        assert!(
            lines[6].contains("\"event\":\"end\"") && lines[6].contains("\"reason\":\"exact\""),
            "{}",
            lines[6]
        );
        // Every line is a single JSON object leading with the run clock:
        // braces balance and the line starts/ends with them (the
        // smoke-level check the CI run repeats with a real JSON parser).
        for line in lines {
            assert!(line.starts_with("{\"elapsed_us\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn progress_lines_are_throttled() {
        let obs = CliObserver::from_options(true, None, None).unwrap();
        // The first line always prints; an immediate second one is inside
        // the 100 ms window and is suppressed.
        assert!(obs.progress_tick());
        assert!(!obs.progress_tick());
        // Without --progress nothing ever prints.
        let quiet = CliObserver::from_options(false, None, None).unwrap();
        assert!(!quiet.progress_tick());
    }

    #[test]
    fn progress_suffix_reports_rate_coverage_and_eta() {
        let obs = CliObserver::from_options(true, None, None)
            .unwrap()
            .with_space_total(Some(10));
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
        obs.cache_hit(&d);
        obs.distribution_pruned(&d, PruneKind::Dominance);
        // 1 eval + 1 hit + 1 prune = 3 of 10 candidates covered.
        let suffix = obs.progress_suffix();
        assert!(suffix.contains(" evals/s"), "{suffix}");
        assert!(suffix.contains("30.0% of space"), "{suffix}");
        assert!(suffix.contains("ETA "), "{suffix}");
    }

    #[test]
    fn progress_suffix_without_space_total_is_rate_only() {
        let obs = CliObserver::from_options(true, None, None).unwrap();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
        let suffix = obs.progress_suffix();
        assert!(suffix.contains(" evals/s"), "{suffix}");
        assert!(!suffix.contains("% of space"), "{suffix}");
        assert!(!suffix.contains("ETA"), "{suffix}");
    }

    #[test]
    fn progress_suffix_saturates_at_full_coverage() {
        let obs = CliObserver::from_options(true, None, None)
            .unwrap()
            .with_space_total(Some(2));
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        for _ in 0..5 {
            obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
        }
        let suffix = obs.progress_suffix();
        // Coverage is clamped to 100% and a finished space has no ETA.
        assert!(suffix.contains("100.0% of space"), "{suffix}");
        assert!(!suffix.contains("ETA"), "{suffix}");
    }

    #[test]
    fn checkpoint_sink_records_evaluations() {
        let path = std::env::temp_dir().join("buffy-observe-test-checkpoint.ckpt");
        let obs = CliObserver::from_options(
            false,
            None,
            Some(CheckpointConfig {
                path: path.clone(),
                fingerprint: 99,
                channels: 2,
                objectives: ObjectiveSpace::default_2d(),
                faults: None,
            }),
        )
        .unwrap();
        let d1 = StorageDistribution::from_capacities(vec![4, 2]);
        let d2 = StorageDistribution::from_capacities(vec![5, 3]);
        obs.evaluation_finished(&d1, Rational::new(1, 7), 5, 10);
        obs.evaluation_finished(&d2, Rational::new(1, 6), 8, 20);
        obs.finish("exact").unwrap();

        let cp = Checkpoint::load(&path).unwrap();
        assert_eq!(cp.fingerprint, 99);
        assert_eq!(cp.channels, 2);
        assert_eq!(cp.entries.len(), 2);
        let map = cp.warm_start_map();
        assert_eq!(map.get(&d1), Some(&(Rational::new(1, 7), 5)));
        assert_eq!(map.get(&d2), Some(&(Rational::new(1, 6), 8)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_checkpoint_save_does_not_abort_the_run() {
        // An unwritable checkpoint directory: every save fails. The run
        // must continue and `finish` must still succeed.
        let obs = CliObserver::from_options(
            false,
            None,
            Some(CheckpointConfig {
                path: PathBuf::from("/nonexistent-dir/run.ckpt"),
                fingerprint: 7,
                channels: 2,
                objectives: ObjectiveSpace::default_2d(),
                faults: None,
            }),
        )
        .unwrap();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        for _ in 0..(CHECKPOINT_EVERY + 1) {
            obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
        }
        obs.finish("exact")
            .expect("checkpoint failure must not fail the run");
        // The sink disabled itself after the first exhausted retry.
        let sink = obs.checkpoint.as_ref().unwrap().lock().unwrap();
        assert!(sink.disabled);
    }

    #[test]
    fn injected_save_faults_recover_on_retry() {
        // Pick a seed whose write-fault stream tears the first attempt
        // and spares the second: the in-sink retry must recover and
        // publish an intact checkpoint.
        use buffy_core::FaultSite;
        let seed = (0..1000u64)
            .find(|&s| {
                let p = FaultPlan::new(s).with_rate(FaultSite::CheckpointWrite, 1, 2);
                p.should_inject(FaultSite::CheckpointWrite)
                    && !p.should_inject(FaultSite::CheckpointWrite)
            })
            .expect("some seed tears exactly the first save attempt");
        let path = std::env::temp_dir().join("buffy-observe-test-faulty.ckpt");
        std::fs::remove_file(&path).ok();
        let plan = Arc::new(FaultPlan::new(seed).with_rate(FaultSite::CheckpointWrite, 1, 2));
        let obs = CliObserver::from_options(
            false,
            None,
            Some(CheckpointConfig {
                path: path.clone(),
                fingerprint: 11,
                channels: 2,
                objectives: ObjectiveSpace::default_2d(),
                faults: Some(plan),
            }),
        )
        .unwrap();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
        obs.finish("exact").unwrap();
        let cp = Checkpoint::load(&path).expect("a retried save must publish intact");
        assert_eq!(cp.entries.len(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("ckpt.tmp")).ok();
    }

    #[test]
    fn drop_guard_closes_the_trace_on_panic_paths() {
        let path = std::env::temp_dir().join("buffy-observe-test-dropguard.jsonl");
        let caught = std::panic::catch_unwind(|| {
            let obs = CliObserver::from_options(false, Some(path.to_str().unwrap()), None).unwrap();
            let d = StorageDistribution::from_capacities(vec![4, 2]);
            obs.evaluation_finished(&d, Rational::new(1, 7), 5, 10);
            // The run dies mid-stream: `finish` never runs, the observer
            // unwinds, and the drop guard must close the trace.
            panic!("simulated mid-run crash");
        });
        assert!(caught.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"elapsed_us\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(
            lines[1].contains("\"event\":\"end\"") && lines[1].contains("\"reason\":\"aborted\""),
            "{}",
            lines[1]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_then_drop_emits_exactly_one_end_event() {
        let path = std::env::temp_dir().join("buffy-observe-test-oneend.jsonl");
        {
            let obs = CliObserver::from_options(false, Some(path.to_str().unwrap()), None).unwrap();
            obs.finish("exact").unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"event\":\"end\"").count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
