//! Progress reporting and JSON-lines tracing for the exploration commands.
//!
//! [`CliObserver`] implements the kernel's
//! [`ExploreObserver`](buffy_core::ExploreObserver) and fans each event out
//! to up to two sinks:
//!
//! - `--progress`: human-readable status on **stderr** (phase transitions,
//!   periodic evaluation counts, accepted Pareto points) — stdout stays
//!   reserved for the command's actual output;
//! - `--trace-json <file>`: one JSON object per line (JSON-lines), one
//!   line per structured event, written through a buffered writer that is
//!   flushed by [`CliObserver::finish`].
//!
//! The trace vocabulary (the `event` field): `phase`, `evaluation`,
//! `cache-hit`, `pareto`. All values are numbers, fixed enum names or
//! rationals rendered as `"p/q"`, so the lines need no string escaping.

use buffy_core::{ExploreObserver, ParetoPoint, SearchPhase};
use buffy_graph::{Rational, StorageDistribution};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many evaluations between `--progress` status lines.
const PROGRESS_EVERY: u64 = 64;

/// Observer wired to the `--progress` and `--trace-json` options.
pub struct CliObserver {
    progress: bool,
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    trace: Option<Mutex<BufWriter<File>>>,
}

impl CliObserver {
    /// Builds the observer from the parsed options.
    ///
    /// # Errors
    ///
    /// Returns a message when the `--trace-json` path cannot be created
    /// (missing directory, no permission, …) — the command refuses to run
    /// rather than silently dropping the trace.
    pub fn from_options(progress: bool, trace_path: Option<&str>) -> Result<CliObserver, String> {
        let trace = match trace_path {
            None => None,
            Some(path) => {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
                Some(Mutex::new(BufWriter::new(file)))
            }
        };
        Ok(CliObserver {
            progress,
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            trace,
        })
    }

    fn trace_line(&self, line: std::fmt::Arguments<'_>) {
        if let Some(trace) = &self.trace {
            if let Ok(mut writer) = trace.lock() {
                let _ = writeln!(writer, "{line}");
            }
        }
    }

    /// Flushes the trace file.
    ///
    /// # Errors
    ///
    /// Returns a message when the buffered trace cannot be written out.
    pub fn finish(self) -> Result<(), String> {
        if let Some(trace) = self.trace {
            let mut writer = trace
                .into_inner()
                .map_err(|_| "trace writer poisoned".to_string())?;
            writer
                .flush()
                .map_err(|e| format!("cannot write trace file: {e}"))?;
        }
        Ok(())
    }
}

/// Renders a distribution's capacities as a JSON array.
pub(crate) fn dist_json(dist: &StorageDistribution) -> String {
    let caps: Vec<String> = dist.as_slice().iter().map(u64::to_string).collect();
    format!("[{}]", caps.join(","))
}

impl ExploreObserver for CliObserver {
    fn phase_started(&self, phase: SearchPhase) {
        if self.progress {
            eprintln!("[buffy] phase: {}", phase.name());
        }
        self.trace_line(format_args!(
            "{{\"event\":\"phase\",\"phase\":\"{}\"}}",
            phase.name()
        ));
    }

    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        let n = self.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress && n.is_multiple_of(PROGRESS_EVERY) {
            eprintln!(
                "[buffy] {n} analyses, {} cache hits",
                self.cache_hits.load(Ordering::Relaxed)
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"evaluation\",\"distribution\":{},\"size\":{},\"throughput\":\"{}\",\"states\":{},\"nanos\":{}}}",
            dist_json(dist),
            dist.size(),
            throughput,
            states,
            nanos
        ));
    }

    fn cache_hit(&self, dist: &StorageDistribution) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.trace_line(format_args!(
            "{{\"event\":\"cache-hit\",\"distribution\":{}}}",
            dist_json(dist)
        ));
    }

    fn pareto_accepted(&self, point: &ParetoPoint) {
        if self.progress {
            eprintln!(
                "[buffy] pareto point: size {} throughput {}",
                point.size, point.throughput
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"pareto\",\"size\":{},\"throughput\":\"{}\",\"distribution\":{}}}",
            point.size,
            point.throughput,
            dist_json(&point.distribution)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncreatable_trace_path_is_a_proper_error() {
        let err = CliObserver::from_options(false, Some("/nonexistent-dir/trace.jsonl"))
            .err()
            .expect("creating a trace in a missing directory must fail");
        assert!(err.contains("cannot create trace file"), "{err}");
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let path = std::env::temp_dir().join("buffy-observe-test-trace.jsonl");
        let obs = CliObserver::from_options(false, Some(path.to_str().unwrap())).unwrap();
        obs.phase_started(SearchPhase::Bounds);
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 1234);
        obs.cache_hit(&d);
        obs.pareto_accepted(&ParetoPoint::new(d, Rational::new(1, 7)));
        obs.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"event\":\"phase\""), "{}", lines[0]);
        assert!(
            lines[1].contains("\"event\":\"evaluation\"")
                && lines[1].contains("\"distribution\":[4,2]")
                && lines[1].contains("\"throughput\":\"1/7\""),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"event\":\"cache-hit\""), "{}", lines[2]);
        assert!(
            lines[3].contains("\"event\":\"pareto\"") && lines[3].contains("\"size\":6"),
            "{}",
            lines[3]
        );
        // Every line is a single JSON object: braces balance and the line
        // starts/ends with them (the smoke-level check the CI run repeats
        // with a real JSON parser).
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }
}
