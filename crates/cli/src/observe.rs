//! Progress reporting, JSON-lines tracing and checkpointing for the
//! exploration commands.
//!
//! [`CliObserver`] implements the kernel's
//! [`ExploreObserver`](buffy_core::ExploreObserver) and fans each event out
//! to up to three sinks:
//!
//! - `--progress`: human-readable status on **stderr** (phase transitions,
//!   evaluation counts, accepted Pareto points) — stdout stays reserved
//!   for the command's actual output. High-frequency lines are throttled
//!   to roughly ten per second on a monotonic clock so a fast exploration
//!   cannot flood the terminal; phase transitions, failures and the final
//!   summary always print;
//! - `--trace-json <file>`: one JSON object per line (JSON-lines). Every
//!   event leads with `elapsed_us`, microseconds on the monotonic clock
//!   since the observer (and hence the run) was created. Each line is
//!   written with a single `write_all` call as it happens, so an
//!   interrupted or failing run never leaves a truncated object behind,
//!   and [`CliObserver::finish`] appends a final
//!   `{"event":"end","reason":…}` record on every exit path;
//! - `--checkpoint <file>`: the completed evaluations accumulate into a
//!   [`Checkpoint`] that is re-saved (atomically, via a temporary file)
//!   every [`CHECKPOINT_EVERY`] evaluations and once more at `finish`.
//!
//! The trace vocabulary (the `event` field): `phase`, `evaluation`,
//! `cache-hit`, `pruned`, `pareto`, `evaluation-failed`, `end`. All values are
//! numbers, fixed enum names, rationals rendered as `"p/q"`, or
//! JSON-escaped strings.

use buffy_core::{
    Checkpoint, CheckpointEntry, ExploreObserver, ObjectiveSpace, ParetoPoint, PruneKind,
    SearchPhase,
};
use buffy_graph::{Rational, StorageDistribution};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Minimum spacing between throttled `--progress` lines, in microseconds
/// of monotonic time (~10 lines per second).
const PROGRESS_INTERVAL_US: u64 = 100_000;

/// How many evaluations between periodic checkpoint saves.
const CHECKPOINT_EVERY: u64 = 64;

/// Where and what to checkpoint (`--checkpoint`).
pub struct CheckpointConfig {
    /// Target file.
    pub path: PathBuf,
    /// Fingerprint of the graph under exploration.
    pub fingerprint: u64,
    /// Channel count of the graph (arity of every entry).
    pub channels: usize,
    /// Objective space of the run, recorded in the checkpoint header so a
    /// resume can refuse a mismatched `--objectives`.
    pub objectives: ObjectiveSpace,
}

struct CheckpointSink {
    path: PathBuf,
    checkpoint: Checkpoint,
    since_save: u64,
}

impl CheckpointSink {
    fn save(&mut self) -> Result<(), String> {
        self.since_save = 0;
        self.checkpoint.save(&self.path).map_err(|e| e.to_string())
    }
}

/// Observer wired to the `--progress`, `--trace-json` and `--checkpoint`
/// options.
pub struct CliObserver {
    progress: bool,
    /// Run-start instant: origin of every `elapsed_us` trace field and of
    /// the progress throttle.
    start: Instant,
    /// Monotonic micros of the last throttled progress line
    /// (`u64::MAX` = none emitted yet).
    progress_last_us: AtomicU64,
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    trace: Option<Mutex<File>>,
    checkpoint: Option<Mutex<CheckpointSink>>,
}

impl CliObserver {
    /// Builds the observer from the parsed options.
    ///
    /// # Errors
    ///
    /// Returns a message when the `--trace-json` path cannot be created
    /// (missing directory, no permission, …) — the command refuses to run
    /// rather than silently dropping the trace.
    pub fn from_options(
        progress: bool,
        trace_path: Option<&str>,
        checkpoint: Option<CheckpointConfig>,
    ) -> Result<CliObserver, String> {
        let trace = match trace_path {
            None => None,
            Some(path) => {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
                Some(Mutex::new(file))
            }
        };
        let checkpoint = checkpoint.map(|config| {
            let mut checkpoint = Checkpoint::new(config.fingerprint, config.channels);
            checkpoint.objectives = config.objectives;
            Mutex::new(CheckpointSink {
                path: config.path,
                checkpoint,
                since_save: 0,
            })
        });
        Ok(CliObserver {
            progress,
            start: Instant::now(),
            progress_last_us: AtomicU64::new(u64::MAX),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            trace,
            checkpoint,
        })
    }

    /// Whether a throttled progress line may print now. Lossy under
    /// contention by design: when two threads race the interval, one line
    /// wins and the other is simply skipped.
    fn progress_tick(&self) -> bool {
        if !self.progress {
            return false;
        }
        let now = self.start.elapsed().as_micros() as u64;
        let last = self.progress_last_us.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < PROGRESS_INTERVAL_US {
            return false;
        }
        self.progress_last_us
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    fn trace_line(&self, line: std::fmt::Arguments<'_>) {
        if let Some(trace) = &self.trace {
            // One write_all per complete line: a crash between events never
            // leaves a JSON object cut in half. Every event object leads
            // with the run's monotonic clock.
            let body = line.to_string();
            let rest = body.strip_prefix('{').unwrap_or(&body);
            let text = format!(
                "{{\"elapsed_us\":{},{rest}\n",
                self.start.elapsed().as_micros() as u64
            );
            if let Ok(mut writer) = trace.lock() {
                let _ = writer.write_all(text.as_bytes());
            }
        }
    }

    /// Closes the run: appends the trace's final
    /// `{"event":"end","reason":…}` record and saves the checkpoint one
    /// last time. Call exactly once, on every exit path — `reason` is
    /// `"exact"` for complete runs, the cancellation reason's name for
    /// truncated ones, `"error"` when the run failed.
    ///
    /// # Errors
    ///
    /// Returns a message when the trace or checkpoint cannot be written.
    pub fn finish(&self, reason: &str) -> Result<(), String> {
        if self.progress {
            // The final summary is never throttled.
            eprintln!(
                "[buffy] finished ({reason}): {} analyses, {} cache hits",
                self.evaluations.load(Ordering::Relaxed),
                self.cache_hits.load(Ordering::Relaxed)
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"end\",\"reason\":\"{}\"}}",
            json_escape(reason)
        ));
        if let Some(trace) = &self.trace {
            let mut writer = trace.lock().map_err(|_| "trace writer poisoned")?;
            writer
                .flush()
                .map_err(|e| format!("cannot write trace file: {e}"))?;
        }
        if let Some(checkpoint) = &self.checkpoint {
            let mut sink = checkpoint.lock().map_err(|_| "checkpoint sink poisoned")?;
            sink.save()?;
        }
        Ok(())
    }
}

/// Renders a distribution's capacities as a JSON array.
pub(crate) fn dist_json(dist: &StorageDistribution) -> String {
    let caps: Vec<String> = dist.as_slice().iter().map(u64::to_string).collect();
    format!("[{}]", caps.join(","))
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ExploreObserver for CliObserver {
    fn phase_started(&self, phase: SearchPhase) {
        if self.progress {
            eprintln!("[buffy] phase: {}", phase.name());
        }
        self.trace_line(format_args!(
            "{{\"event\":\"phase\",\"phase\":\"{}\"}}",
            phase.name()
        ));
    }

    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        let n = self.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress_tick() {
            eprintln!(
                "[buffy] {n} analyses, {} cache hits",
                self.cache_hits.load(Ordering::Relaxed)
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"evaluation\",\"distribution\":{},\"size\":{},\"throughput\":\"{}\",\"states\":{},\"nanos\":{}}}",
            dist_json(dist),
            dist.size(),
            throughput,
            states,
            nanos
        ));
        if let Some(checkpoint) = &self.checkpoint {
            if let Ok(mut sink) = checkpoint.lock() {
                sink.checkpoint.entries.push(CheckpointEntry {
                    capacities: dist.as_slice().to_vec(),
                    throughput,
                    states,
                });
                sink.since_save += 1;
                if sink.since_save >= CHECKPOINT_EVERY {
                    // Periodic saves are best-effort; the final save in
                    // `finish` reports failures.
                    let _ = sink.save();
                }
            }
        }
    }

    fn evaluation_failed(&self, dist: &StorageDistribution, message: &str) {
        if self.progress {
            eprintln!("[buffy] evaluation of {dist} failed: {message}");
        }
        self.trace_line(format_args!(
            "{{\"event\":\"evaluation-failed\",\"distribution\":{},\"message\":\"{}\"}}",
            dist_json(dist),
            json_escape(message)
        ));
    }

    fn cache_hit(&self, dist: &StorageDistribution) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.trace_line(format_args!(
            "{{\"event\":\"cache-hit\",\"distribution\":{}}}",
            dist_json(dist)
        ));
    }

    fn distribution_pruned(&self, dist: &StorageDistribution, kind: PruneKind) {
        self.trace_line(format_args!(
            "{{\"event\":\"pruned\",\"kind\":\"{}\",\"distribution\":{}}}",
            kind.name(),
            dist_json(dist)
        ));
    }

    fn pareto_accepted(&self, point: &ParetoPoint) {
        if self.progress_tick() {
            eprintln!(
                "[buffy] pareto point: size {} throughput {}",
                point.size, point.throughput
            );
        }
        self.trace_line(format_args!(
            "{{\"event\":\"pareto\",\"size\":{},\"throughput\":\"{}\",\"distribution\":{}}}",
            point.size,
            point.throughput,
            dist_json(&point.distribution)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncreatable_trace_path_is_a_proper_error() {
        let err = CliObserver::from_options(false, Some("/nonexistent-dir/trace.jsonl"), None)
            .err()
            .expect("creating a trace in a missing directory must fail");
        assert!(err.contains("cannot create trace file"), "{err}");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let path = std::env::temp_dir().join("buffy-observe-test-trace.jsonl");
        let obs = CliObserver::from_options(false, Some(path.to_str().unwrap()), None).unwrap();
        obs.phase_started(SearchPhase::Bounds);
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        obs.evaluation_finished(&d, Rational::new(1, 7), 5, 1234);
        obs.cache_hit(&d);
        obs.distribution_pruned(&d, PruneKind::Static);
        obs.evaluation_failed(&d, "panicked: \"why\"");
        obs.pareto_accepted(&ParetoPoint::new(d, Rational::new(1, 7)));
        obs.finish("exact").unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"event\":\"phase\""), "{}", lines[0]);
        assert!(
            lines[1].contains("\"event\":\"evaluation\"")
                && lines[1].contains("\"distribution\":[4,2]")
                && lines[1].contains("\"throughput\":\"1/7\""),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"event\":\"cache-hit\""), "{}", lines[2]);
        assert!(
            lines[3].contains("\"event\":\"pruned\"")
                && lines[3].contains("\"kind\":\"static-bound\"")
                && lines[3].contains("\"distribution\":[4,2]"),
            "{}",
            lines[3]
        );
        assert!(
            lines[4].contains("\"event\":\"evaluation-failed\"")
                && lines[4].contains("panicked: \\\"why\\\""),
            "{}",
            lines[4]
        );
        assert!(
            lines[5].contains("\"event\":\"pareto\"") && lines[5].contains("\"size\":6"),
            "{}",
            lines[5]
        );
        assert!(
            lines[6].contains("\"event\":\"end\"") && lines[6].contains("\"reason\":\"exact\""),
            "{}",
            lines[6]
        );
        // Every line is a single JSON object leading with the run clock:
        // braces balance and the line starts/ends with them (the
        // smoke-level check the CI run repeats with a real JSON parser).
        for line in lines {
            assert!(line.starts_with("{\"elapsed_us\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn progress_lines_are_throttled() {
        let obs = CliObserver::from_options(true, None, None).unwrap();
        // The first line always prints; an immediate second one is inside
        // the 100 ms window and is suppressed.
        assert!(obs.progress_tick());
        assert!(!obs.progress_tick());
        // Without --progress nothing ever prints.
        let quiet = CliObserver::from_options(false, None, None).unwrap();
        assert!(!quiet.progress_tick());
    }

    #[test]
    fn checkpoint_sink_records_evaluations() {
        let path = std::env::temp_dir().join("buffy-observe-test-checkpoint.ckpt");
        let obs = CliObserver::from_options(
            false,
            None,
            Some(CheckpointConfig {
                path: path.clone(),
                fingerprint: 99,
                channels: 2,
                objectives: ObjectiveSpace::default_2d(),
            }),
        )
        .unwrap();
        let d1 = StorageDistribution::from_capacities(vec![4, 2]);
        let d2 = StorageDistribution::from_capacities(vec![5, 3]);
        obs.evaluation_finished(&d1, Rational::new(1, 7), 5, 10);
        obs.evaluation_finished(&d2, Rational::new(1, 6), 8, 20);
        obs.finish("exact").unwrap();

        let cp = Checkpoint::load(&path).unwrap();
        assert_eq!(cp.fingerprint, 99);
        assert_eq!(cp.channels, 2);
        assert_eq!(cp.entries.len(), 2);
        let map = cp.warm_start_map();
        assert_eq!(map.get(&d1), Some(&(Rational::new(1, 7), 5)));
        assert_eq!(map.get(&d2), Some(&(Rational::new(1, 6), 8)));
        std::fs::remove_file(&path).ok();
    }
}
