//! Implementations of the `buffy` subcommands.

use crate::args::{parse_dist, ParsedArgs};
use crate::observe::{dist_json, CliObserver};
use buffy_analysis::{maximal_throughput, throughput, ExplorationLimits, Schedule};
use buffy_core::{
    explore_dependency_guided_observed, explore_design_space_observed, lower_bound_distribution,
    min_storage_for_throughput_observed, ExplorationResult, ExplorationStats, ExploreOptions,
    ParetoPoint,
};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::dot::to_dot;
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::{ActorId, Rational, RepetitionVector, SdfGraph, StorageDistribution};
use buffy_lint::{lint_csdf, lint_sdf, LintContext, Severity};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

fn load_graph(parsed: &ParsedArgs) -> Result<SdfGraph, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn observed_actor(parsed: &ParsedArgs, graph: &SdfGraph) -> Result<ActorId, String> {
    match parsed.options.get("actor") {
        None => Ok(graph.default_observed_actor()),
        Some(name) => graph
            .actor_by_name(name)
            .ok_or_else(|| format!("unknown actor {name:?}")),
    }
}

fn explore_options(parsed: &ParsedArgs, graph: &SdfGraph) -> Result<ExploreOptions, String> {
    Ok(ExploreOptions {
        observed: Some(observed_actor(parsed, graph)?),
        max_size: parsed.get("max-size")?,
        quantum: parsed.get("quantum")?,
        threads: parsed.get("threads")?.unwrap_or(1),
        ..ExploreOptions::default()
    })
}

fn w(out: Out<'_>, text: std::fmt::Arguments<'_>) -> Result<(), String> {
    out.write_fmt(text).map_err(|e| e.to_string())
}

/// Builds the observer wired to `--progress` and `--trace-json`.
fn observer_from(parsed: &ParsedArgs) -> Result<CliObserver, String> {
    CliObserver::from_options(
        parsed.has_flag("progress"),
        parsed.options.get("trace-json").map(String::as_str),
    )
}

/// Renders the exploration statistics as a JSON object.
fn stats_json(stats: &ExplorationStats) -> String {
    format!(
        "{{\"evaluations\":{},\"cache_hits\":{},\"max_states\":{},\"eval_nanos\":{}}}",
        stats.evaluations, stats.cache_hits, stats.max_states, stats.eval_nanos
    )
}

/// Renders one Pareto point as a JSON object.
fn point_json(p: &ParetoPoint) -> String {
    format!(
        "{{\"size\":{},\"throughput\":\"{}\",\"distribution\":{}}}",
        p.size,
        p.throughput,
        dist_json(&p.distribution)
    )
}

/// Builds the lint context from whatever `--dist`, `--throughput` and
/// `--actor` carry. A `--dist` of the wrong arity is left for B004 to
/// report rather than rejected here.
fn lint_context(parsed: &ParsedArgs, observed: Option<ActorId>) -> Result<LintContext, String> {
    let distribution = match parsed.options.get("dist") {
        Some(v) => Some(StorageDistribution::from_capacities(parse_dist(v)?)),
        None => None,
    };
    Ok(LintContext {
        distribution,
        throughput_constraint: parsed.get("throughput")?,
        observed,
    })
}

/// Refuses a lint report with `Error`-level findings. The full report is
/// printed only when it blocks the run.
fn refuse_errors(report: &buffy_lint::Report, out: Out<'_>) -> Result<(), String> {
    if report.has_errors() {
        w(out, format_args!("{}", report.render_human()))?;
        return Err(format!(
            "the model has {} error-level finding(s); use --force to run anyway",
            report.count(Severity::Error)
        ));
    }
    Ok(())
}

/// Runs the lint rules before an analysis and refuses `Error`-level
/// models unless `--force` is given.
fn preflight(parsed: &ParsedArgs, graph: &SdfGraph, out: Out<'_>) -> Result<(), String> {
    if parsed.has_flag("force") {
        return Ok(());
    }
    let ctx = lint_context(parsed, Some(observed_actor(parsed, graph)?))?;
    refuse_errors(&lint_sdf(graph, &ctx), out)
}

/// The CSDF counterpart of [`preflight`]: runs the same rule set through
/// the lint crate's CSDF view before an analysis, gated by `--force`.
fn csdf_preflight(
    parsed: &ParsedArgs,
    graph: &buffy_csdf::CsdfGraph,
    observed: Option<ActorId>,
    out: Out<'_>,
) -> Result<(), String> {
    if parsed.has_flag("force") {
        return Ok(());
    }
    let ctx = lint_context(parsed, observed)?;
    refuse_errors(&lint_csdf(graph, &ctx), out)
}

/// Whether an XML document uses the SDF3 cyclo-static dialect.
fn is_csdf_document(text: &str) -> bool {
    text.contains("<csdf") || text.contains("type=\"csdf\"")
}

pub fn check(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // The SDF3 csdf dialect tags the document with type="csdf" and a
    // <csdf> element; anything else is treated as plain SDF.
    let report = if is_csdf_document(&text) {
        let graph = buffy_csdf::xml::read_csdf_xml(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = match parsed.options.get("actor") {
            None => None,
            Some(name) => Some(
                graph
                    .actor_by_name(name)
                    .ok_or_else(|| format!("unknown actor {name:?}"))?,
            ),
        };
        lint_csdf(&graph, &lint_context(parsed, observed)?)
    } else {
        let graph = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = match parsed.options.get("actor") {
            None => None,
            Some(name) => Some(
                graph
                    .actor_by_name(name)
                    .ok_or_else(|| format!("unknown actor {name:?}"))?,
            ),
        };
        lint_sdf(&graph, &lint_context(parsed, observed)?)
    };
    if parsed.has_flag("json") {
        w(out, format_args!("{}\n", report.render_json()))?;
    } else {
        w(out, format_args!("{}", report.render_human()))?;
    }
    let errors = report.count(Severity::Error);
    if errors > 0 {
        return Err(format!("{errors} error-level finding(s)"));
    }
    let warnings = report.count(Severity::Warning);
    if warnings > 0 && parsed.has_flag("deny-warnings") {
        return Err(format!("{warnings} warning(s) denied by --deny-warnings"));
    }
    Ok(())
}

pub fn info(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    w(out, format_args!("graph: {}\n", graph.name()))?;
    w(
        out,
        format_args!(
            "actors: {}, channels: {}, initial tokens: {}\n",
            graph.num_actors(),
            graph.num_channels(),
            graph.total_initial_tokens()
        ),
    )?;
    let q = RepetitionVector::compute(&graph).map_err(|e| e.to_string())?;
    w(out, format_args!("repetition vector:"))?;
    for (aid, actor) in graph.actors() {
        w(out, format_args!(" {}={}", actor.name(), q[aid]))?;
    }
    w(out, format_args!("\n"))?;
    let obs = observed_actor(parsed, &graph)?;
    match maximal_throughput(&graph, obs) {
        Ok(t) => w(
            out,
            format_args!("maximal throughput of {}: {}\n", graph.actor(obs).name(), t),
        )?,
        Err(e) => w(out, format_args!("maximal throughput: {e}\n"))?,
    }
    let lb = lower_bound_distribution(&graph);
    w(
        out,
        format_args!("per-channel lower bounds: {} (size {})\n", lb, lb.size()),
    )?;
    Ok(())
}

pub fn analyze(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    preflight(parsed, &graph, out)?;
    let obs = observed_actor(parsed, &graph)?;
    let dist = match parsed.options.get("dist") {
        Some(v) => {
            let caps = parse_dist(v)?;
            if caps.len() != graph.num_channels() {
                return Err(format!(
                    "--dist has {} entries but the graph has {} channels",
                    caps.len(),
                    graph.num_channels()
                ));
            }
            StorageDistribution::from_capacities(caps)
        }
        None => lower_bound_distribution(&graph),
    };
    let r = throughput(&graph, &dist, obs).map_err(|e| e.to_string())?;
    w(
        out,
        format_args!("distribution: {dist} (size {})\n", dist.size()),
    )?;
    if r.deadlocked {
        w(out, format_args!("execution deadlocks: throughput 0\n"))?;
    } else {
        w(
            out,
            format_args!(
                "throughput of {}: {} (period {} time steps, {} firings per period)\n",
                graph.actor(obs).name(),
                r.throughput,
                r.period,
                r.firings_per_period
            ),
        )?;
        w(
            out,
            format_args!(
                "reduced state space: {} states stored, cycle of {} states entered at t={}\n",
                r.states_stored, r.cycle_states, r.cycle_entry_time
            ),
        )?;
    }
    Ok(())
}

fn print_front(
    result: &ExplorationResult,
    parsed: &ParsedArgs,
    out: Out<'_>,
) -> Result<(), String> {
    if parsed.has_flag("json") {
        let points: Vec<String> = result.pareto.points().iter().map(point_json).collect();
        w(
            out,
            format_args!(
                "{{\"pareto\":[{}],\"max_throughput\":\"{}\",\"lower_bound_size\":{},\"upper_bound_size\":{},\"stats\":{}}}\n",
                points.join(","),
                result.max_throughput,
                result.lower_bound_size,
                result.upper_bound_size,
                stats_json(&result.stats)
            ),
        )?;
    } else if parsed.has_flag("csv") {
        w(out, format_args!("size,throughput,distribution\n"))?;
        for p in result.pareto.points() {
            w(
                out,
                format_args!("{},{},\"{}\"\n", p.size, p.throughput, p.distribution),
            )?;
        }
    } else {
        for p in result.pareto.points() {
            w(out, format_args!("{p}\n"))?;
        }
        w(
            out,
            format_args!(
                "{} Pareto points; maximal throughput {}; bounds lb={} ub={}; {}\n",
                result.pareto.len(),
                result.max_throughput,
                result.lower_bound_size,
                result.upper_bound_size,
                result.stats
            ),
        )?;
    }
    Ok(())
}

pub fn explore(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_csdf_document(&text) {
        return csdf_explore(parsed, out);
    }
    let graph = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    preflight(parsed, &graph, out)?;
    let opts = explore_options(parsed, &graph)?;
    let algorithm = parsed
        .options
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("guided");
    let observer = observer_from(parsed)?;
    let result = match algorithm {
        "guided" => explore_dependency_guided_observed(&graph, &opts, &observer)
            .map_err(|e| e.to_string())?,
        "exhaustive" => {
            explore_design_space_observed(&graph, &opts, &observer).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown algorithm {other:?} (guided|exhaustive)")),
    };
    observer.finish()?;
    print_front(&result, parsed, out)
}

pub fn constraint(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    preflight(parsed, &graph, out)?;
    let opts = explore_options(parsed, &graph)?;
    let constraint: Rational = parsed
        .get("throughput")?
        .ok_or("--throughput R is required (e.g. --throughput 1/6)")?;
    if constraint <= Rational::ZERO {
        return Err("--throughput must be positive".into());
    }
    let observer = observer_from(parsed)?;
    let (p, stats) = min_storage_for_throughput_observed(&graph, constraint, &opts, &observer)
        .map_err(|e| e.to_string())?;
    observer.finish()?;
    if parsed.has_flag("json") {
        return w(
            out,
            format_args!(
                "{{\"constraint\":\"{constraint}\",\"point\":{},\"stats\":{}}}\n",
                point_json(&p),
                stats_json(&stats)
            ),
        );
    }
    w(
        out,
        format_args!(
            "minimal storage for throughput ≥ {constraint}: size {} with γ = {} (achieves {})\n",
            p.size, p.distribution, p.throughput
        ),
    )?;
    w(out, format_args!("{stats}\n"))
}

pub fn schedule(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    let caps = parse_dist(
        parsed
            .options
            .get("dist")
            .ok_or("--dist is required (e.g. --dist 4,2)")?,
    )?;
    if caps.len() != graph.num_channels() {
        return Err(format!(
            "--dist has {} entries but the graph has {} channels",
            caps.len(),
            graph.num_channels()
        ));
    }
    let dist = StorageDistribution::from_capacities(caps);
    let s = Schedule::extract(&graph, &dist, ExplorationLimits::default())
        .map_err(|e| e.to_string())?;
    match (s.period_entry(), s.period()) {
        (Some(entry), Some(period)) => {
            w(
                out,
                format_args!("periodic schedule: period {period} entered at t={entry}\n"),
            )?;
        }
        _ => w(out, format_args!("execution deadlocks\n"))?,
    }
    let horizon: u64 = parsed.get("horizon")?.unwrap_or_else(|| {
        s.period_entry()
            .and_then(|e| s.period().map(|p| e + 2 * p))
            .unwrap_or(20)
            .min(120)
    });
    w(out, format_args!("{}", s.gantt(&graph, horizon)))
}

pub fn convert(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    match parsed.options.get("to").map(String::as_str) {
        Some("dot") => w(out, format_args!("{}", to_dot(&graph))),
        Some("xml") | None => w(out, format_args!("{}", write_sdf_xml(&graph))),
        Some(other) => Err(format!("unknown output format {other:?} (dot|xml)")),
    }
}

pub fn generate(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let actors: usize = parsed.get("actors")?.unwrap_or(6);
    let channels: usize = parsed
        .get("channels")?
        .unwrap_or(actors + 1)
        .max(actors.saturating_sub(1));
    let config = RandomGraphConfig {
        actors,
        extra_channels: channels - (actors - 1),
        max_repetition: parsed.get("max-repetition")?.unwrap_or(4),
        max_rate_factor: parsed.get("max-rate")?.unwrap_or(2),
        max_execution_time: parsed.get("max-exec")?.unwrap_or(4),
        seed: parsed.get("seed")?.unwrap_or(0),
    };
    if config.actors == 0 {
        return Err("--actors must be at least 1".into());
    }
    let graph = config.generate();
    w(out, format_args!("{}", write_sdf_xml(&graph)))
}

fn load_csdf(parsed: &ParsedArgs) -> Result<buffy_csdf::CsdfGraph, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    buffy_csdf::xml::read_csdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

pub fn csdf_analyze(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_csdf(parsed)?;
    let obs = match parsed.options.get("actor") {
        None => graph.default_observed_actor(),
        Some(name) => graph
            .actor_by_name(name)
            .ok_or_else(|| format!("unknown actor {name:?}"))?,
    };
    csdf_preflight(parsed, &graph, Some(obs), out)?;
    let caps = parse_dist(
        parsed
            .options
            .get("dist")
            .ok_or("--dist is required for csdf-analyze")?,
    )?;
    if caps.len() != graph.num_channels() {
        return Err(format!(
            "--dist has {} entries but the graph has {} channels",
            caps.len(),
            graph.num_channels()
        ));
    }
    let dist = StorageDistribution::from_capacities(caps);
    let r = buffy_csdf::csdf_throughput(&graph, &dist, obs, buffy_csdf::CsdfLimits::default())
        .map_err(|e| e.to_string())?;
    if r.deadlocked {
        w(out, format_args!("execution deadlocks: throughput 0\n"))
    } else {
        w(
            out,
            format_args!(
                "phase throughput of {}: {} ({} full cycles per time unit)\n",
                graph.actor(obs).name(),
                r.throughput,
                r.cycle_throughput()
            ),
        )
    }
}

pub fn csdf_explore(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_csdf(parsed)?;
    let observed = match parsed.options.get("actor") {
        None => None,
        Some(name) => Some(
            graph
                .actor_by_name(name)
                .ok_or_else(|| format!("unknown actor {name:?}"))?,
        ),
    };
    csdf_preflight(parsed, &graph, observed, out)?;
    let opts = buffy_csdf::CsdfExploreOptions {
        observed,
        max_size: parsed.get("max-size")?,
        threads: parsed.get("threads")?.unwrap_or(1),
        quantum: parsed.get("quantum")?,
        ..buffy_csdf::CsdfExploreOptions::default()
    };
    let observer = observer_from(parsed)?;
    let r =
        buffy_csdf::csdf_explore_observed(&graph, &opts, &observer).map_err(|e| e.to_string())?;
    observer.finish()?;
    if parsed.has_flag("json") {
        let points: Vec<String> = r.pareto.points().iter().map(point_json).collect();
        w(
            out,
            format_args!(
                "{{\"pareto\":[{}],\"max_throughput\":\"{}\",\"stats\":{}}}\n",
                points.join(","),
                r.max_throughput,
                stats_json(&r.stats)
            ),
        )
    } else if parsed.has_flag("csv") {
        w(out, format_args!("size,throughput,distribution\n"))?;
        for p in r.pareto.points() {
            w(
                out,
                format_args!("{},{},\"{}\"\n", p.size, p.throughput, p.distribution),
            )?;
        }
        Ok(())
    } else {
        for p in r.pareto.points() {
            w(out, format_args!("{p}\n"))?;
        }
        w(
            out,
            format_args!(
                "{} Pareto points; maximal throughput {}; {}\n",
                r.pareto.len(),
                r.max_throughput,
                r.stats
            ),
        )
    }
}

pub fn gallery(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let name = parsed
        .positional
        .get(1)
        .ok_or("expected a gallery graph name")?;
    let graph = match name.as_str() {
        "example" => gallery::example(),
        "bipartite" => gallery::bipartite(),
        "modem" => gallery::modem(),
        "cd2dat" => gallery::cd2dat(),
        "satellite" => gallery::satellite(),
        "h263decoder" | "h263" => gallery::h263_decoder(),
        other => return Err(format!("unknown gallery graph {other:?}")),
    };
    w(out, format_args!("{}", write_sdf_xml(&graph)))
}
