//! Implementations of the `buffy` subcommands.

use crate::args::{parse_dist, ParsedArgs};
use crate::observe::{dist_json, json_escape, CheckpointConfig, CliObserver};
use crate::serve::ServeSession;
use crate::telemetry::{telemetry_json, TelemetrySession};
use buffy_analysis::{
    fx_hash, maximal_throughput, throughput, AnalysisError, BoundCertificate, DataflowSemantics,
    ExplorationLimits, Schedule, StaticBounds,
};
use buffy_core::{
    explore_dependency_guided_observed, explore_design_space_observed, lower_bound_distribution,
    lower_bound_distribution_for, min_storage_for_throughput_observed,
    upper_bound_distribution_for, CancelReason, CancelToken, Checkpoint, Completeness,
    DistributionSpace, EvaluationFailure, ExplorationResult, ExplorationStats, ExploreError,
    ExploreOptions, ObjectiveKind, ObjectiveSpace, ParetoPoint, SkippedSize, TeeObserver,
    WarmStart,
};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::dot::to_dot;
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::{ActorId, ChannelId, Rational, RepetitionVector, SdfGraph, StorageDistribution};
use buffy_lint::{lint_csdf, lint_sdf, LintContext, Severity};
use std::fmt::Write as _;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

type Out<'a> = &'a mut dyn Write;

fn load_graph(parsed: &ParsedArgs) -> Result<SdfGraph, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn observed_actor(parsed: &ParsedArgs, graph: &SdfGraph) -> Result<ActorId, String> {
    match parsed.options.get("actor") {
        None => Ok(graph.default_observed_actor()),
        Some(name) => graph
            .actor_by_name(name)
            .ok_or_else(|| format!("unknown actor {name:?}")),
    }
}

/// Parses `--objectives storage,throughput[,energy][,latency]`; absent
/// means the paper's default storage/throughput pair.
fn objective_space(parsed: &ParsedArgs) -> Result<ObjectiveSpace, String> {
    match parsed.options.get("objectives") {
        None => Ok(ObjectiveSpace::default_2d()),
        Some(v) => v.parse().map_err(|e| format!("invalid --objectives: {e}")),
    }
}

fn explore_options(parsed: &ParsedArgs, graph: &SdfGraph) -> Result<ExploreOptions, String> {
    Ok(ExploreOptions {
        observed: Some(observed_actor(parsed, graph)?),
        max_size: parsed.get("max-size")?,
        quantum: parsed.get("quantum")?,
        threads: parsed.get("threads")?.unwrap_or(1),
        static_prune: !parsed.has_flag("no-static-prune"),
        warm_start_neighbours: !parsed.has_flag("no-warm-start"),
        objectives: objective_space(parsed)?,
        ..ExploreOptions::default()
    })
}

fn w(out: Out<'_>, text: std::fmt::Arguments<'_>) -> Result<(), String> {
    out.write_fmt(text).map_err(|e| e.to_string())
}

/// Builds the observer wired to `--progress`, `--trace-json` and
/// `--checkpoint`. The fingerprint and channel count tag the checkpoint
/// so `--resume` can refuse a file recorded for a different graph.
fn observer_from(
    parsed: &ParsedArgs,
    fingerprint: u64,
    channels: usize,
) -> Result<CliObserver, String> {
    let objectives = objective_space(parsed)?;
    let checkpoint = parsed
        .options
        .get("checkpoint")
        .map(|path| CheckpointConfig {
            path: PathBuf::from(path),
            fingerprint,
            channels,
            objectives: objectives.clone(),
            faults: None,
        });
    CliObserver::from_options(
        parsed.has_flag("progress"),
        parsed.options.get("trace-json").map(String::as_str),
        checkpoint,
    )
}

/// Cap on the `--progress` space pre-count: beyond this many candidates
/// the percent-covered/ETA annotations are simply dropped.
const PROGRESS_COUNT_CAP: u64 = 1_000_000;

/// Pre-counts the realizable candidate space between the §7 lower bound
/// and the §8 upper bound (clipped to `--max-size`), the denominator of
/// the `--progress` percent-covered and ETA annotations.
///
/// Only runs when `--progress` was given — it costs one extra bounds
/// computation up front, independent of the run itself (the run's own
/// statistics are untouched). `None` (annotations off) when the bounds
/// cannot be computed or the space exceeds [`PROGRESS_COUNT_CAP`].
fn progress_space_total<M: DataflowSemantics>(
    parsed: &ParsedArgs,
    model: &M,
    observed: ActorId,
) -> Option<u64> {
    if !parsed.has_flag("progress") {
        return None;
    }
    let space = DistributionSpace::for_model(model);
    let ub = upper_bound_distribution_for(model, observed, ExplorationLimits::default())
        .ok()?
        .0
        .size();
    let hi = match parsed.get::<u64>("max-size").ok().flatten() {
        Some(max) => max.min(ub),
        None => ub,
    };
    space.count_in_capped(space.min_size(), hi, PROGRESS_COUNT_CAP)
}

/// Rough bytes per reduced state for the `--max-memory-mb` watchdog: an
/// interned state stores per-channel token counts and per-actor phase/
/// busy-time bookkeeping, plus arena and hash-table overhead. A
/// deliberate approximation — the watchdog degrades a runaway run
/// gracefully, it does not meter allocations.
fn bytes_per_state(channels: usize, actors: usize) -> u64 {
    64 + 16 * channels as u64 + 16 * actors as u64
}

/// The `--max-states`/`--max-memory-mb` watchdog budget, in states, for a
/// graph of the given shape. When both options are set the stricter one
/// wins.
fn state_budget(
    parsed: &ParsedArgs,
    channels: usize,
    actors: usize,
) -> Result<Option<u64>, String> {
    let max_states = parsed.get::<u64>("max-states")?;
    let from_memory = parsed
        .get::<u64>("max-memory-mb")?
        .map(|mb| (mb * 1024 * 1024) / bytes_per_state(channels, actors));
    Ok(match (max_states, from_memory) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    })
}

/// Budget/cancellation token armed from `--timeout` (seconds, fractional
/// allowed), `--max-evals` and the `--max-states`/`--max-memory-mb`
/// memory watchdog, and registered with the SIGINT handler so Ctrl-C
/// degrades the run gracefully instead of killing it.
fn cancel_token(
    parsed: &ParsedArgs,
    channels: usize,
    actors: usize,
) -> Result<Arc<CancelToken>, String> {
    let mut token = CancelToken::new();
    if let Some(secs) = parsed.get::<f64>("timeout")? {
        if !secs.is_finite() || secs <= 0.0 {
            return Err("--timeout must be a positive number of seconds".into());
        }
        token = token.with_deadline(Duration::from_secs_f64(secs));
    }
    if let Some(budget) = parsed.get::<u64>("max-evals")? {
        token = token.with_eval_budget(budget);
    }
    if let Some(budget) = state_budget(parsed, channels, actors)? {
        token = token.with_state_budget(budget);
    }
    let token = Arc::new(token);
    crate::signal::watch(&token);
    Ok(token)
}

/// Loads `--resume FILE` into a warm-start map, refusing checkpoints
/// recorded for a different graph or a different objective space.
fn resume_warm_start(
    parsed: &ParsedArgs,
    fingerprint: u64,
    channels: usize,
) -> Result<Option<Arc<WarmStart>>, String> {
    let Some(path) = parsed.options.get("resume") else {
        return Ok(None);
    };
    let cp = match Checkpoint::load(Path::new(path)) {
        Ok(cp) => cp,
        Err(strict) => {
            // A torn or partially corrupted v3 file still carries every
            // record that checksums; salvage the longest valid prefix
            // rather than discarding the whole run.
            let (cp, report) =
                Checkpoint::load_salvaged(Path::new(path)).map_err(|_| strict.to_string())?;
            if !report.complete {
                eprintln!(
                    "[buffy] warning: checkpoint {path} is damaged; \
                     salvaged {} of {} entries",
                    report.salvaged, report.declared
                );
            }
            cp
        }
    };
    if cp.fingerprint != fingerprint || cp.channels != channels {
        return Err(format!(
            "checkpoint {path} was recorded for a different graph \
             (fingerprint {:016x}, {} channels; this graph: {fingerprint:016x}, {channels})",
            cp.fingerprint, cp.channels
        ));
    }
    let objectives = objective_space(parsed)?;
    if cp.objectives != objectives {
        return Err(format!(
            "checkpoint {path} was recorded with objectives {} but this run \
             declares {objectives}; pass a matching --objectives to resume it",
            cp.objectives
        ));
    }
    Ok(Some(Arc::new(cp.warm_start_map())))
}

/// Exit code of a run that produced a result: 0 when exact, 130 when a
/// SIGINT truncated it, 3 for any other truncation (deadline, budget).
pub(crate) fn exit_code_for(completeness: &Completeness) -> i32 {
    match completeness.truncated_by {
        None => 0,
        Some(CancelReason::Interrupt) => 130,
        Some(_) => 3,
    }
}

/// The `reason` recorded in the trace's final `end` event.
pub(crate) fn end_reason(completeness: &Completeness) -> &'static str {
    match completeness.truncated_by {
        None => "exact",
        Some(reason) => reason.name(),
    }
}

/// Exit path for a run cancelled before any result was salvageable: the
/// message still goes to the output, but SIGINT keeps its conventional
/// status 130 (hard errors otherwise exit 1).
fn cancelled_without_result(
    reason: CancelReason,
    observer: &CliObserver,
    out: Out<'_>,
) -> Result<i32, String> {
    observer.finish(reason.name()).ok();
    if reason == CancelReason::Interrupt {
        w(
            out,
            format_args!(
                "error: exploration cancelled before any result was available: {reason}\n"
            ),
        )?;
        return Ok(130);
    }
    Err(format!(
        "exploration cancelled before any result was available: {reason}"
    ))
}

/// Renders the optional `,"telemetry":{…}` suffix of a `--json` report.
fn telemetry_section(snapshot: Option<&buffy_telemetry::Snapshot>) -> String {
    match snapshot {
        None => String::new(),
        Some(s) => format!(",\"telemetry\":{}", telemetry_json(s)),
    }
}

/// Renders the exploration statistics as a JSON object.
fn stats_json(stats: &ExplorationStats) -> String {
    format!(
        "{{\"evaluations\":{},\"cache_hits\":{},\"static_prunes\":{},\"dominance_prunes\":{},\"max_states\":{},\"eval_nanos\":{},\"warm_starts\":{},\"warm_start_hit_rate\":{:.4},\"warm_start_states\":{}}}",
        stats.evaluations,
        stats.cache_hits,
        stats.static_prunes,
        stats.dominance_prunes,
        stats.max_states,
        stats.eval_nanos,
        stats.warm_starts,
        stats.warm_start_hit_rate(),
        stats.warm_start_states
    )
}

/// Renders one Pareto point as a JSON object. The energy field appears
/// exactly when the run declared the energy objective (the point then
/// carries it); `latency` is the CLI-side annotation computed on the
/// final front — `Some(None)` renders as `null` (deadlocked schedule).
fn point_json(p: &ParetoPoint, latency: Option<Option<u64>>) -> String {
    let mut s = format!("{{\"size\":{},\"throughput\":\"{}\"", p.size, p.throughput);
    if let Some(e) = p.energy() {
        let _ = write!(s, ",\"energy\":\"{e}\"");
    }
    match latency {
        None => {}
        Some(Some(l)) => {
            let _ = write!(s, ",\"latency\":{l}");
        }
        Some(None) => s.push_str(",\"latency\":null"),
    }
    let _ = write!(s, ",\"distribution\":{}}}", dist_json(&p.distribution));
    s
}

/// Renders the declared objective axes as a JSON array of names.
fn objectives_json(space: &ObjectiveSpace) -> String {
    let names: Vec<String> = space
        .kinds()
        .iter()
        .map(|k| format!("\"{}\"", k.name()))
        .collect();
    format!("[{}]", names.join(","))
}

/// The per-point latency annotation of `points`, indexed like the front:
/// `None` when the latency axis was not requested, otherwise one entry
/// per point (`None` inside = the schedule deadlocks, no first output).
type FrontLatencies = Option<Vec<Option<u64>>>;

/// Computes the latency annotation for an SDF front when the space asks
/// for it. Latency is a reporting axis, never a dominance axis, so it is
/// derived here on the final front only (one schedule extraction per
/// point) instead of inside the exploration kernel.
fn front_latencies(
    space: &ObjectiveSpace,
    graph: &SdfGraph,
    observed: ActorId,
    points: &[ParetoPoint],
) -> FrontLatencies {
    if !space.has(ObjectiveKind::Latency) {
        return None;
    }
    Some(
        points
            .iter()
            .map(|p| {
                buffy_analysis::latency(
                    graph,
                    &p.distribution,
                    observed,
                    ExplorationLimits::default(),
                )
                .ok()
                .and_then(|r| r.initial_latency)
            })
            .collect(),
    )
}

/// Renders the front as CSV with one column per declared axis.
fn front_csv(points: &[ParetoPoint], space: &ObjectiveSpace, latencies: &FrontLatencies) -> String {
    let energy = space.has(ObjectiveKind::Energy);
    let mut out = String::from("size,throughput");
    if energy {
        out.push_str(",energy");
    }
    if latencies.is_some() {
        out.push_str(",latency");
    }
    out.push_str(",distribution\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(out, "{},{}", p.size, p.throughput);
        if energy {
            let _ = write!(out, ",{}", p.energy().unwrap_or(Rational::ZERO));
        }
        if let Some(ls) = latencies {
            match ls.get(i).copied().flatten() {
                Some(l) => {
                    let _ = write!(out, ",{l}");
                }
                // Deadlocked schedule: no first output, the cell stays
                // empty rather than inventing a number.
                None => out.push(','),
            }
        }
        let _ = writeln!(out, ",\"{}\"", p.distribution);
    }
    out
}

/// Renders the front as a Graphviz slice: one record node per point,
/// chained in size order so the rendering reads as the trade-off curve.
fn front_dot(
    name: &str,
    points: &[ParetoPoint],
    space: &ObjectiveSpace,
    latencies: &FrontLatencies,
) -> String {
    let energy = space.has(ObjectiveKind::Energy);
    let mut out = format!("digraph \"{}\" {{\n", name.replace('"', "'"));
    out.push_str("  rankdir=LR;\n  node [shape=record];\n");
    for (i, p) in points.iter().enumerate() {
        let mut label = format!("size {}|throughput {}", p.size, p.throughput);
        if energy {
            let _ = write!(label, "|energy {}", p.energy().unwrap_or(Rational::ZERO));
        }
        if let Some(ls) = latencies {
            match ls.get(i).copied().flatten() {
                Some(l) => {
                    let _ = write!(label, "|latency {l}");
                }
                None => label.push_str("|latency -"),
            }
        }
        let _ = write!(label, "|γ = {}", p.distribution);
        let _ = writeln!(out, "  p{i} [label=\"{{{label}}}\"];");
        if i > 0 {
            let _ = writeln!(out, "  p{} -> p{i};", i - 1);
        }
    }
    out.push_str("}\n");
    out
}

/// Writes the `--export-csv` / `--export-dot` front files, if requested.
fn export_front(
    parsed: &ParsedArgs,
    name: &str,
    points: &[ParetoPoint],
    space: &ObjectiveSpace,
    latencies: &FrontLatencies,
) -> Result<(), String> {
    if let Some(path) = parsed.options.get("export-csv") {
        std::fs::write(path, front_csv(points, space, latencies))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = parsed.options.get("export-dot") {
        std::fs::write(path, front_dot(name, points, space, latencies))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Renders the completeness marker as a JSON object.
fn completeness_json(c: &Completeness) -> String {
    let truncated_by = match c.truncated_by {
        None => "null".to_string(),
        Some(reason) => format!("\"{}\"", reason.name()),
    };
    format!(
        "{{\"exact\":{},\"truncated_by\":{truncated_by},\"distributions_skipped\":{}}}",
        c.exact, c.distributions_skipped
    )
}

/// Renders the skipped-size annotations as a JSON array.
fn skipped_json(skipped: &[SkippedSize]) -> String {
    let items: Vec<String> = skipped
        .iter()
        .map(|s| {
            format!(
                "{{\"size\":{},\"distributions\":{},\"throughput_bound\":\"{}\"}}",
                s.size, s.distributions, s.throughput_bound
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Renders the evaluation failures as a JSON array.
fn failures_json(failures: &[EvaluationFailure]) -> String {
    let items: Vec<String> = failures
        .iter()
        .map(|f| {
            format!(
                "{{\"distribution\":{},\"message\":\"{}\"}}",
                dist_json(&f.distribution),
                json_escape(&f.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Appends the human-readable degradation report: partiality, skipped
/// sizes with their conservative bounds, failed evaluations.
fn write_resilience_text(
    completeness: &Completeness,
    skipped: &[SkippedSize],
    failures: &[EvaluationFailure],
    out: Out<'_>,
) -> Result<(), String> {
    if let Some(reason) = completeness.truncated_by {
        w(
            out,
            format_args!(
                "PARTIAL RESULT ({reason}): every listed point is sound, but {} \
                 enumerated distributions were never evaluated\n",
                completeness.distributions_skipped
            ),
        )?;
        for s in skipped {
            w(
                out,
                format_args!(
                    "  size {}: {} unevaluated distributions, throughput ≤ {}\n",
                    s.size, s.distributions, s.throughput_bound
                ),
            )?;
        }
    }
    for f in failures {
        w(
            out,
            format_args!(
                "evaluation failed for {} (treated as throughput 0): {}\n",
                f.distribution, f.message
            ),
        )?;
    }
    Ok(())
}

/// Builds the lint context from whatever `--dist`, `--throughput` and
/// `--actor` carry. A `--dist` of the wrong arity is left for B004 to
/// report rather than rejected here.
fn lint_context(parsed: &ParsedArgs, observed: Option<ActorId>) -> Result<LintContext, String> {
    let distribution = match parsed.options.get("dist") {
        Some(v) => Some(StorageDistribution::from_capacities(parse_dist(v)?)),
        None => None,
    };
    Ok(LintContext {
        distribution,
        throughput_constraint: parsed.get("throughput")?,
        observed,
        space_threshold: parsed.get("space-threshold")?,
    })
}

/// Refuses a lint report with `Error`-level findings. The full report is
/// printed only when it blocks the run.
fn refuse_errors(report: &buffy_lint::Report, out: Out<'_>) -> Result<(), String> {
    if report.has_errors() {
        w(out, format_args!("{}", report.render_human()))?;
        return Err(format!(
            "the model has {} error-level finding(s); use --force to run anyway",
            report.count(Severity::Error)
        ));
    }
    Ok(())
}

/// Runs the lint rules before an analysis and refuses `Error`-level
/// models unless `--force` is given.
fn preflight(parsed: &ParsedArgs, graph: &SdfGraph, out: Out<'_>) -> Result<(), String> {
    if parsed.has_flag("force") {
        return Ok(());
    }
    let ctx = lint_context(parsed, Some(observed_actor(parsed, graph)?))?;
    refuse_errors(&lint_sdf(graph, &ctx), out)
}

/// The CSDF counterpart of [`preflight`]: runs the same rule set through
/// the lint crate's CSDF view before an analysis, gated by `--force`.
fn csdf_preflight(
    parsed: &ParsedArgs,
    graph: &buffy_csdf::CsdfGraph,
    observed: Option<ActorId>,
    out: Out<'_>,
) -> Result<(), String> {
    if parsed.has_flag("force") {
        return Ok(());
    }
    let ctx = lint_context(parsed, observed)?;
    refuse_errors(&lint_csdf(graph, &ctx), out)
}

/// Whether an XML document uses the SDF3 cyclo-static dialect.
pub(crate) fn is_csdf_document(text: &str) -> bool {
    text.contains("<csdf") || text.contains("type=\"csdf\"")
}

pub fn check(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // The SDF3 csdf dialect tags the document with type="csdf" and a
    // <csdf> element; anything else is treated as plain SDF.
    let report = if is_csdf_document(&text) {
        let graph = buffy_csdf::xml::read_csdf_xml(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = match parsed.options.get("actor") {
            None => None,
            Some(name) => Some(
                graph
                    .actor_by_name(name)
                    .ok_or_else(|| format!("unknown actor {name:?}"))?,
            ),
        };
        lint_csdf(&graph, &lint_context(parsed, observed)?)
    } else {
        let graph = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = match parsed.options.get("actor") {
            None => None,
            Some(name) => Some(
                graph
                    .actor_by_name(name)
                    .ok_or_else(|| format!("unknown actor {name:?}"))?,
            ),
        };
        lint_sdf(&graph, &lint_context(parsed, observed)?)
    };
    if parsed.has_flag("json") {
        w(out, format_args!("{}\n", report.render_json()))?;
    } else {
        w(out, format_args!("{}", report.render_human()))?;
    }
    let errors = report.count(Severity::Error);
    if errors > 0 {
        return Err(format!("{errors} error-level finding(s)"));
    }
    let warnings = report.count(Severity::Warning);
    if warnings > 0 && parsed.has_flag("deny-warnings") {
        return Err(format!("{warnings} warning(s) denied by --deny-warnings"));
    }
    Ok(())
}

pub fn info(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    w(out, format_args!("graph: {}\n", graph.name()))?;
    w(
        out,
        format_args!(
            "actors: {}, channels: {}, initial tokens: {}\n",
            graph.num_actors(),
            graph.num_channels(),
            graph.total_initial_tokens()
        ),
    )?;
    let q = RepetitionVector::compute(&graph).map_err(|e| e.to_string())?;
    w(out, format_args!("repetition vector:"))?;
    for (aid, actor) in graph.actors() {
        w(out, format_args!(" {}={}", actor.name(), q[aid]))?;
    }
    w(out, format_args!("\n"))?;
    let obs = observed_actor(parsed, &graph)?;
    match maximal_throughput(&graph, obs) {
        Ok(t) => w(
            out,
            format_args!("maximal throughput of {}: {}\n", graph.actor(obs).name(), t),
        )?,
        Err(e) => w(out, format_args!("maximal throughput: {e}\n"))?,
    }
    let lb = lower_bound_distribution(&graph);
    w(
        out,
        format_args!("per-channel lower bounds: {} (size {})\n", lb, lb.size()),
    )?;
    Ok(())
}

pub fn analyze(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    preflight(parsed, &graph, out)?;
    let obs = observed_actor(parsed, &graph)?;
    let dist = match parsed.options.get("dist") {
        Some(v) => {
            let caps = parse_dist(v)?;
            if caps.len() != graph.num_channels() {
                return Err(format!(
                    "--dist has {} entries but the graph has {} channels",
                    caps.len(),
                    graph.num_channels()
                ));
            }
            StorageDistribution::from_capacities(caps)
        }
        None => lower_bound_distribution(&graph),
    };
    let r = throughput(&graph, &dist, obs).map_err(|e| e.to_string())?;
    w(
        out,
        format_args!("distribution: {dist} (size {})\n", dist.size()),
    )?;
    if r.deadlocked {
        w(out, format_args!("execution deadlocks: throughput 0\n"))?;
    } else {
        w(
            out,
            format_args!(
                "throughput of {}: {} (period {} time steps, {} firings per period)\n",
                graph.actor(obs).name(),
                r.throughput,
                r.period,
                r.firings_per_period
            ),
        )?;
        w(
            out,
            format_args!(
                "reduced state space: {} states stored, cycle of {} states entered at t={}\n",
                r.states_stored, r.cycle_states, r.cycle_entry_time
            ),
        )?;
    }
    Ok(())
}

/// Appends one front point to the human-readable listing, with the
/// CLI-side latency annotation when the axis was requested.
fn write_point_text(
    p: &ParetoPoint,
    i: usize,
    latencies: &FrontLatencies,
    out: Out<'_>,
) -> Result<(), String> {
    match latencies {
        None => w(out, format_args!("{p}\n")),
        Some(ls) => match ls.get(i).copied().flatten() {
            Some(l) => w(out, format_args!("{p}  latency {l}\n")),
            None => w(out, format_args!("{p}  latency -\n")),
        },
    }
}

fn print_front(
    result: &ExplorationResult,
    parsed: &ParsedArgs,
    telemetry: Option<&buffy_telemetry::Snapshot>,
    space: &ObjectiveSpace,
    latencies: &FrontLatencies,
    out: Out<'_>,
) -> Result<(), String> {
    if parsed.has_flag("json") {
        let points: Vec<String> = result
            .pareto
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| point_json(p, latencies.as_ref().map(|ls| ls.get(i).copied().flatten())))
            .collect();
        w(
            out,
            format_args!(
                "{{\"objectives\":{},\"pareto\":[{}],\"max_throughput\":\"{}\",\"lower_bound_size\":{},\"upper_bound_size\":{},\"completeness\":{},\"skipped\":{},\"failures\":{},\"stats\":{}{}}}\n",
                objectives_json(space),
                points.join(","),
                result.max_throughput,
                result.lower_bound_size,
                result.upper_bound_size,
                completeness_json(&result.completeness),
                skipped_json(&result.skipped),
                failures_json(&result.failures),
                stats_json(&result.stats),
                telemetry_section(telemetry)
            ),
        )?;
    } else if parsed.has_flag("csv") {
        w(
            out,
            format_args!("{}", front_csv(result.pareto.points(), space, latencies)),
        )?;
    } else {
        for (i, p) in result.pareto.points().iter().enumerate() {
            write_point_text(p, i, latencies, out)?;
        }
        w(
            out,
            format_args!(
                "{} Pareto points; maximal throughput {}; bounds lb={} ub={}; {}\n",
                result.pareto.len(),
                result.max_throughput,
                result.lower_bound_size,
                result.upper_bound_size,
                result.stats
            ),
        )?;
        write_resilience_text(&result.completeness, &result.skipped, &result.failures, out)?;
    }
    Ok(())
}

pub fn explore(parsed: &ParsedArgs, out: Out<'_>) -> Result<i32, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_csdf_document(&text) {
        return csdf_explore(parsed, out);
    }
    let graph = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    preflight(parsed, &graph, out)?;
    let fingerprint = fx_hash(&write_sdf_xml(&graph));
    let mut opts = explore_options(parsed, &graph)?;
    opts.cancel = Some(cancel_token(
        parsed,
        graph.num_channels(),
        graph.num_actors(),
    )?);
    opts.warm_start = resume_warm_start(parsed, fingerprint, graph.num_channels())?;
    let algorithm = parsed
        .options
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("guided");
    let observer = observer_from(parsed, fingerprint, graph.num_channels())?.with_space_total(
        progress_space_total(parsed, &graph, observed_actor(parsed, &graph)?),
    );
    let telemetry = TelemetrySession::from_options(parsed);
    let serve = ServeSession::from_options(parsed, graph.name(), algorithm, &telemetry)?;
    let mut tee = TeeObserver::new();
    tee.push(&observer);
    if let Some(session) = &serve {
        tee.push(session.observer());
    }
    let run = match algorithm {
        "guided" => explore_dependency_guided_observed(&graph, &opts, &tee),
        "exhaustive" => explore_design_space_observed(&graph, &opts, &tee),
        other => return Err(format!("unknown algorithm {other:?} (guided|exhaustive)")),
    };
    let result = match run {
        Ok(result) => result,
        Err(ExploreError::Cancelled { reason }) => {
            if let Some(session) = serve {
                session.finish(reason.name());
            }
            return cancelled_without_result(reason, &observer, out);
        }
        Err(e) => {
            observer.finish("error").ok();
            if let Some(session) = serve {
                session.finish("error");
            }
            return Err(e.to_string());
        }
    };
    observer.finish(end_reason(&result.completeness))?;
    let snapshot = telemetry.finish()?;
    let space = objective_space(parsed)?;
    let latencies = front_latencies(
        &space,
        &graph,
        observed_actor(parsed, &graph)?,
        result.pareto.points(),
    );
    export_front(
        parsed,
        graph.name(),
        result.pareto.points(),
        &space,
        &latencies,
    )?;
    print_front(&result, parsed, snapshot.as_ref(), &space, &latencies, out)?;
    if let Some(session) = serve {
        session.finish(end_reason(&result.completeness));
    }
    Ok(exit_code_for(&result.completeness))
}

pub fn constraint(parsed: &ParsedArgs, out: Out<'_>) -> Result<i32, String> {
    let graph = load_graph(parsed)?;
    preflight(parsed, &graph, out)?;
    let fingerprint = fx_hash(&write_sdf_xml(&graph));
    let mut opts = explore_options(parsed, &graph)?;
    opts.cancel = Some(cancel_token(
        parsed,
        graph.num_channels(),
        graph.num_actors(),
    )?);
    opts.warm_start = resume_warm_start(parsed, fingerprint, graph.num_channels())?;
    let constraint: Rational = parsed
        .get("throughput")?
        .ok_or("--throughput R is required (e.g. --throughput 1/6)")?;
    if constraint <= Rational::ZERO {
        return Err("--throughput must be positive".into());
    }
    let observer = observer_from(parsed, fingerprint, graph.num_channels())?.with_space_total(
        progress_space_total(parsed, &graph, observed_actor(parsed, &graph)?),
    );
    let telemetry = TelemetrySession::from_options(parsed);
    let serve = ServeSession::from_options(parsed, graph.name(), "constraint", &telemetry)?;
    let mut tee = TeeObserver::new();
    tee.push(&observer);
    if let Some(session) = &serve {
        tee.push(session.observer());
    }
    let r = match min_storage_for_throughput_observed(&graph, constraint, &opts, &tee) {
        Ok(r) => r,
        Err(ExploreError::Cancelled { reason }) => {
            if let Some(session) = serve {
                session.finish(reason.name());
            }
            return cancelled_without_result(reason, &observer, out);
        }
        Err(e) => {
            observer.finish("error").ok();
            if let Some(session) = serve {
                session.finish("error");
            }
            return Err(e.to_string());
        }
    };
    observer.finish(end_reason(&r.completeness))?;
    let snapshot = telemetry.finish()?;
    if parsed.has_flag("json") {
        w(
            out,
            format_args!(
                "{{\"constraint\":\"{constraint}\",\"point\":{},\"completeness\":{},\"failures\":{},\"stats\":{}{}}}\n",
                point_json(&r.point, None),
                completeness_json(&r.completeness),
                failures_json(&r.failures),
                stats_json(&r.stats),
                telemetry_section(snapshot.as_ref())
            ),
        )?;
        if let Some(session) = serve {
            session.finish(end_reason(&r.completeness));
        }
        return Ok(exit_code_for(&r.completeness));
    }
    w(
        out,
        format_args!(
            "minimal storage for throughput ≥ {constraint}: size {} with γ = {} (achieves {})\n",
            r.point.size, r.point.distribution, r.point.throughput
        ),
    )?;
    w(out, format_args!("{}\n", r.stats))?;
    if let Some(reason) = r.completeness.truncated_by {
        w(
            out,
            format_args!(
                "PARTIAL RESULT ({reason}): the witness is sound but may not be minimal \
                 ({} smaller candidate distributions were never evaluated)\n",
                r.completeness.distributions_skipped
            ),
        )?;
    }
    write_resilience_text(&Completeness::exact(), &[], &r.failures, out)?;
    if let Some(session) = serve {
        session.finish(end_reason(&r.completeness));
    }
    Ok(exit_code_for(&r.completeness))
}

pub fn schedule(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    let caps = parse_dist(
        parsed
            .options
            .get("dist")
            .ok_or("--dist is required (e.g. --dist 4,2)")?,
    )?;
    if caps.len() != graph.num_channels() {
        return Err(format!(
            "--dist has {} entries but the graph has {} channels",
            caps.len(),
            graph.num_channels()
        ));
    }
    let dist = StorageDistribution::from_capacities(caps);
    let s = Schedule::extract(&graph, &dist, ExplorationLimits::default())
        .map_err(|e| e.to_string())?;
    match (s.period_entry(), s.period()) {
        (Some(entry), Some(period)) => {
            w(
                out,
                format_args!("periodic schedule: period {period} entered at t={entry}\n"),
            )?;
        }
        _ => w(out, format_args!("execution deadlocks\n"))?,
    }
    let horizon: u64 = parsed.get("horizon")?.unwrap_or_else(|| {
        s.period_entry()
            .and_then(|e| s.period().map(|p| e + 2 * p))
            .unwrap_or(20)
            .min(120)
    });
    w(out, format_args!("{}", s.gantt(&graph, horizon)))
}

pub fn convert(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_graph(parsed)?;
    match parsed.options.get("to").map(String::as_str) {
        Some("dot") => w(out, format_args!("{}", to_dot(&graph))),
        Some("xml") | None => w(out, format_args!("{}", write_sdf_xml(&graph))),
        Some(other) => Err(format!("unknown output format {other:?} (dot|xml)")),
    }
}

pub fn generate(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let actors: usize = parsed.get("actors")?.unwrap_or(6);
    let channels: usize = parsed
        .get("channels")?
        .unwrap_or(actors + 1)
        .max(actors.saturating_sub(1));
    let config = RandomGraphConfig {
        actors,
        extra_channels: channels - (actors - 1),
        max_repetition: parsed.get("max-repetition")?.unwrap_or(4),
        max_rate_factor: parsed.get("max-rate")?.unwrap_or(2),
        max_execution_time: parsed.get("max-exec")?.unwrap_or(4),
        seed: parsed.get("seed")?.unwrap_or(0),
    };
    if config.actors == 0 {
        return Err("--actors must be at least 1".into());
    }
    let graph = config.generate();
    w(out, format_args!("{}", write_sdf_xml(&graph)))
}

fn load_csdf(parsed: &ParsedArgs) -> Result<buffy_csdf::CsdfGraph, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    buffy_csdf::xml::read_csdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

pub fn csdf_analyze(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let graph = load_csdf(parsed)?;
    let obs = match parsed.options.get("actor") {
        None => graph.default_observed_actor(),
        Some(name) => graph
            .actor_by_name(name)
            .ok_or_else(|| format!("unknown actor {name:?}"))?,
    };
    csdf_preflight(parsed, &graph, Some(obs), out)?;
    let caps = parse_dist(
        parsed
            .options
            .get("dist")
            .ok_or("--dist is required for csdf-analyze")?,
    )?;
    if caps.len() != graph.num_channels() {
        return Err(format!(
            "--dist has {} entries but the graph has {} channels",
            caps.len(),
            graph.num_channels()
        ));
    }
    let dist = StorageDistribution::from_capacities(caps);
    let r = buffy_csdf::csdf_throughput(&graph, &dist, obs, buffy_csdf::CsdfLimits::default())
        .map_err(|e| e.to_string())?;
    if r.deadlocked {
        w(out, format_args!("execution deadlocks: throughput 0\n"))
    } else {
        w(
            out,
            format_args!(
                "phase throughput of {}: {} ({} full cycles per time unit)\n",
                graph.actor(obs).name(),
                r.throughput,
                r.cycle_throughput()
            ),
        )
    }
}

pub fn csdf_explore(parsed: &ParsedArgs, out: Out<'_>) -> Result<i32, String> {
    let graph = load_csdf(parsed)?;
    let observed = match parsed.options.get("actor") {
        None => None,
        Some(name) => Some(
            graph
                .actor_by_name(name)
                .ok_or_else(|| format!("unknown actor {name:?}"))?,
        ),
    };
    csdf_preflight(parsed, &graph, observed, out)?;
    let space = objective_space(parsed)?;
    if space.has(ObjectiveKind::Latency) {
        return Err("the latency objective is SDF-only: csdf-explore supports \
             --objectives storage,throughput[,energy]"
            .into());
    }
    let fingerprint = fx_hash(&buffy_csdf::xml::write_csdf_xml(&graph));
    let opts = buffy_csdf::CsdfExploreOptions {
        observed,
        max_size: parsed.get("max-size")?,
        threads: parsed.get("threads")?.unwrap_or(1),
        quantum: parsed.get("quantum")?,
        cancel: Some(cancel_token(
            parsed,
            graph.num_channels(),
            graph.num_actors(),
        )?),
        warm_start: resume_warm_start(parsed, fingerprint, graph.num_channels())?,
        static_prune: !parsed.has_flag("no-static-prune"),
        warm_start_neighbours: !parsed.has_flag("no-warm-start"),
        objectives: space.clone(),
        ..buffy_csdf::CsdfExploreOptions::default()
    };
    let observer = observer_from(parsed, fingerprint, graph.num_channels())?.with_space_total(
        progress_space_total(
            parsed,
            &graph,
            observed.unwrap_or_else(|| graph.default_observed_actor()),
        ),
    );
    let telemetry = TelemetrySession::from_options(parsed);
    let serve = ServeSession::from_options(parsed, graph.name(), "csdf-explore", &telemetry)?;
    let mut tee = TeeObserver::new();
    tee.push(&observer);
    if let Some(session) = &serve {
        tee.push(session.observer());
    }
    let r = match buffy_csdf::csdf_explore_observed(&graph, &opts, &tee) {
        Ok(r) => r,
        Err(buffy_csdf::CsdfError::Analysis(AnalysisError::Cancelled { reason })) => {
            if let Some(session) = serve {
                session.finish(reason.name());
            }
            return cancelled_without_result(reason, &observer, out);
        }
        Err(e) => {
            observer.finish("error").ok();
            if let Some(session) = serve {
                session.finish("error");
            }
            return Err(e.to_string());
        }
    };
    observer.finish(end_reason(&r.completeness))?;
    let snapshot = telemetry.finish()?;
    export_front(parsed, graph.name(), r.pareto.points(), &space, &None)?;
    if parsed.has_flag("json") {
        let points: Vec<String> = r
            .pareto
            .points()
            .iter()
            .map(|p| point_json(p, None))
            .collect();
        w(
            out,
            format_args!(
                "{{\"objectives\":{},\"pareto\":[{}],\"max_throughput\":\"{}\",\"completeness\":{},\"skipped\":{},\"failures\":{},\"stats\":{}{}}}\n",
                objectives_json(&space),
                points.join(","),
                r.max_throughput,
                completeness_json(&r.completeness),
                skipped_json(&r.skipped),
                failures_json(&r.failures),
                stats_json(&r.stats),
                telemetry_section(snapshot.as_ref())
            ),
        )?;
    } else if parsed.has_flag("csv") {
        w(
            out,
            format_args!("{}", front_csv(r.pareto.points(), &space, &None)),
        )?;
    } else {
        for p in r.pareto.points() {
            w(out, format_args!("{p}\n"))?;
        }
        w(
            out,
            format_args!(
                "{} Pareto points; maximal throughput {}; {}\n",
                r.pareto.len(),
                r.max_throughput,
                r.stats
            ),
        )?;
        write_resilience_text(&r.completeness, &r.skipped, &r.failures, out)?;
    }
    if let Some(session) = serve {
        session.finish(end_reason(&r.completeness));
    }
    Ok(exit_code_for(&r.completeness))
}

/// The distribution `buffy bounds` certifies: `--dist` when given
/// (arity-checked), the §7 lower-bound distribution otherwise.
fn bounds_distribution<M: DataflowSemantics>(
    parsed: &ParsedArgs,
    model: &M,
) -> Result<StorageDistribution, String> {
    match parsed.options.get("dist") {
        Some(v) => {
            let caps = parse_dist(v)?;
            if caps.len() != model.num_channels() {
                return Err(format!(
                    "--dist has {} entries but the graph has {} channels",
                    caps.len(),
                    model.num_channels()
                ));
            }
            Ok(StorageDistribution::from_capacities(caps))
        }
        None => Ok(lower_bound_distribution_for(model)),
    }
}

/// Renders one certificate's bound as a JSON object fragment.
fn certificate_json(cert: &BoundCertificate) -> String {
    let lambda = match &cert.lambda {
        None => "null".to_string(),
        Some(l) => format!("\"{l}\""),
    };
    format!(
        "{{\"bound\":\"{}\",\"lambda\":{lambda},\"deadlocked\":{}}}",
        cert.bound, cert.deadlocked
    )
}

/// Shared rendering of the `buffy bounds` report for both graph kinds:
/// the per-distribution static certificate plus the relaxed per-channel
/// bounds (each channel alone at its capacity, every other channel
/// unbounded — a sound upper bound on its own).
fn bounds_report<M: DataflowSemantics>(
    model: &M,
    name: &str,
    kind: &str,
    observed: ActorId,
    parsed: &ParsedArgs,
    out: Out<'_>,
) -> Result<(), String> {
    let bounds = StaticBounds::new(model, observed).map_err(|e| e.to_string())?;
    if !bounds.is_usable() {
        return Err(
            "the graph is disconnected: the critical cycle ratio may come from a \
             component the observed actor never waits for, so no sound static \
             certificate exists"
                .into(),
        );
    }
    let dist = bounds_distribution(parsed, model)?;
    let cert = bounds
        .certificate(&dist)
        .ok_or("no certificate for this distribution")?;
    let per_channel: Vec<(ChannelId, u64, BoundCertificate)> = (0..model.num_channels())
        .filter_map(|i| {
            let id = ChannelId::new(i);
            let cap = dist.get(id);
            bounds.channel_bound(id, cap).map(|c| (id, cap, c))
        })
        .collect();
    if parsed.has_flag("json") {
        let channels: Vec<String> = per_channel
            .iter()
            .map(|(id, cap, c)| {
                format!(
                    "{{\"channel\":\"{}\",\"capacity\":{cap},\"certificate\":{}}}",
                    json_escape(model.channel_name(*id)),
                    certificate_json(c)
                )
            })
            .collect();
        return w(
            out,
            format_args!(
                "{{\"graph\":\"{}\",\"kind\":\"{kind}\",\"observed\":\"{}\",\"observed_firings\":{},\"distribution\":{},\"certificate\":{},\"channels\":[{}]}}\n",
                json_escape(name),
                json_escape(model.actor_name(observed)),
                bounds.observed_firings(),
                dist_json(&dist),
                certificate_json(&cert),
                channels.join(",")
            ),
        );
    }
    w(out, format_args!("graph: {name} ({kind})\n"))?;
    w(
        out,
        format_args!(
            "observed actor: {} ({} firings per iteration)\n",
            model.actor_name(observed),
            bounds.observed_firings()
        ),
    )?;
    w(
        out,
        format_args!("distribution: {dist} (size {})\n", dist.size()),
    )?;
    if cert.deadlocked {
        w(
            out,
            format_args!("certificate: statically proven deadlock — throughput is exactly 0\n"),
        )?;
    } else {
        let lambda = cert
            .lambda
            .as_ref()
            .map(|l| format!(" (critical cycle ratio λ* = {l})"))
            .unwrap_or_default();
        w(
            out,
            format_args!("certificate: throughput ≤ {}{lambda}\n", cert.bound),
        )?;
    }
    w(
        out,
        format_args!("per-channel relaxed bounds (that channel alone, others unbounded):\n"),
    )?;
    for (id, cap, c) in &per_channel {
        if c.deadlocked {
            w(
                out,
                format_args!(
                    "  {} @ {cap}: statically deadlocks\n",
                    model.channel_name(*id)
                ),
            )?;
        } else {
            w(
                out,
                format_args!(
                    "  {} @ {cap}: throughput ≤ {}\n",
                    model.channel_name(*id),
                    c.bound
                ),
            )?;
        }
    }
    Ok(())
}

pub fn bounds(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_csdf_document(&text) {
        let graph = buffy_csdf::xml::read_csdf_xml(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = match parsed.options.get("actor") {
            None => graph.default_observed_actor(),
            Some(name) => graph
                .actor_by_name(name)
                .ok_or_else(|| format!("unknown actor {name:?}"))?,
        };
        return bounds_report(&graph, graph.name(), "csdf", observed, parsed, out);
    }
    let graph = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let observed = observed_actor(parsed, &graph)?;
    bounds_report(&graph, graph.name(), "sdf", observed, parsed, out)
}

pub fn gallery(parsed: &ParsedArgs, out: Out<'_>) -> Result<(), String> {
    let name = parsed
        .positional
        .get(1)
        .ok_or("expected a gallery graph name")?;
    // Cyclo-static entries serialize through the CSDF dialect; every
    // consumer (explore, chaos, check) sniffs the dialect itself.
    let csdf = match name.as_str() {
        "updown" => Some(buffy_csdf::gallery::updown()),
        "line-scaler" => Some(buffy_csdf::gallery::line_scaler()),
        "h263rows" => Some(buffy_csdf::gallery::h263_rows()),
        "h263rows-power" => Some(buffy_csdf::gallery::h263_rows_power()),
        _ => None,
    };
    if let Some(graph) = csdf {
        return w(
            out,
            format_args!("{}", buffy_csdf::xml::write_csdf_xml(&graph)),
        );
    }
    let graph = match name.as_str() {
        "example" => gallery::example(),
        "bipartite" => gallery::bipartite(),
        "modem" => gallery::modem(),
        "cd2dat" => gallery::cd2dat(),
        "satellite" => gallery::satellite(),
        "h263decoder" | "h263" => gallery::h263_decoder(),
        "modem-power" => gallery::modem_power(),
        "cd2dat-power" => gallery::cd2dat_power(),
        "h263decoder-power" | "h263-power" => gallery::h263_decoder_power(),
        other => return Err(format!("unknown gallery graph {other:?}")),
    };
    w(out, format_args!("{}", write_sdf_xml(&graph)))
}
