//! # buffy-cli
//!
//! Command-line interface of **buffy-rs**, mirroring the paper's `buffy`
//! tool (§10): it reads an SDF3-style XML description of an SDF graph and
//! explores the storage/throughput design space. All functionality is
//! exposed through [`run`] so the binary stays a thin wrapper and the
//! command logic is unit-testable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `deny` rather than `forbid`: the SIGINT handler in `signal` carries the
// binary's single, explicitly-allowed `unsafe` block (a self-declared
// `signal(2)` binding — no external crate).
#![deny(unsafe_code)]

mod args;
mod chaos;
mod commands;
mod observe;
mod serve;
mod signal;
mod telemetry;

pub use args::{parse, parse_dist, ParsedArgs};

use std::io::Write;

/// Usage text printed by `buffy help`.
pub const USAGE: &str = "\
buffy — exact buffer/throughput trade-off exploration for SDF graphs

USAGE:
    buffy <COMMAND> [ARGS]

COMMANDS:
    info <graph.xml>                  graph summary: actors, channels, repetition
                                      vector, maximal throughput
    check <graph.xml> [--json] [--deny-warnings] [--dist 4,2]
          [--throughput R] [--actor NAME] [--space-threshold N]
                                      statically verify the model: consistency,
                                      connectedness, guaranteed deadlock,
                                      infeasible constraints, overflow risk,
                                      dead actors, modelling smells,
                                      distribution-space explosion, static
                                      capacity saturation and trivially
                                      satisfiable constraints (codes
                                      B001..B011); --json emits one JSON
                                      object; --space-threshold tunes B009
    analyze <graph.xml> [--dist 4,2] [--actor NAME]
                                      throughput of one storage distribution
                                      (default: per-channel lower bounds)
    bounds <graph.xml> [--dist 4,2] [--actor NAME] [--json]
                                      static throughput certificate of one
                                      distribution (default: per-channel
                                      lower bounds), computed without
                                      state-space simulation: a sound upper
                                      bound from the capacity-augmented
                                      cycle-ratio analysis, plus the relaxed
                                      per-channel bounds (one channel alone
                                      at its capacity, the others
                                      unbounded); works for SDF and CSDF
                                      inputs
    explore <graph.xml> [--algorithm guided|exhaustive] [--actor NAME]
            [--quantum R] [--max-size N] [--threads N] [--csv] [--json]
            [--objectives storage,throughput[,energy][,latency]]
            [--export-csv FILE] [--export-dot FILE]
            [--no-static-prune] [--no-warm-start] [--progress]
            [--trace-json FILE] [--serve ADDR] [--serve-linger SECS]
            [--metrics FILE] [--chrome-trace FILE] [--timeout SECS]
            [--max-evals N] [--max-states N] [--max-memory-mb M]
            [--checkpoint FILE] [--resume FILE]
                                      chart the Pareto space; CSDF inputs
                                      (type=\"csdf\") are routed through the
                                      cyclo-static explorer automatically;
                                      --threads 0 auto-detects the core
                                      count, --json adds the evaluation
                                      statistics to a machine-readable
                                      report, --progress reports phases and
                                      counts on stderr and --trace-json
                                      streams one JSON object per
                                      evaluation/cache-hit/pruned/pareto
                                      event (each stamped with elapsed_us);
                                      --serve ADDR starts an embedded
                                      observability server for the run
                                      (GET / dashboard, /healthz, live
                                      Prometheus /metrics, JSON /status,
                                      /events streaming the same event
                                      vocabulary as --trace-json over SSE)
                                      and --serve-linger SECS keeps it
                                      serving the final front and counters
                                      that long after the search ends
                                      (attaching the server never changes
                                      the result);
                                      --no-static-prune disables the static
                                      certificate and dominance pruning
                                      (the front is byte-identical either
                                      way; the run just evaluates more
                                      distributions); --no-warm-start
                                      disables seeding each evaluation's
                                      allocations from a neighbouring
                                      distribution's record (again
                                      byte-identical, just slower);
                                      --metrics writes a Prometheus
                                      textfile snapshot and --chrome-trace
                                      a Chrome trace-event JSON (load in
                                      chrome://tracing or Perfetto), and
                                      --json gains a telemetry section
                                      (latency percentiles, per-shard memo
                                      cache statistics);
                                      --timeout / --max-evals bound the run
                                      and degrade it to a partial,
                                      bound-annotated front; --max-states
                                      caps the cumulative reduced states
                                      stored and --max-memory-mb expresses
                                      the same watchdog as an approximate
                                      memory budget (both degrade the run
                                      to a partial front, exit 3, when the
                                      budget trips mid-run); --checkpoint
                                      periodically saves completed
                                      evaluations and --resume warm-starts
                                      from such a file, reproducing the
                                      uninterrupted run exactly (the file
                                      records the declared objectives and a
                                      mismatched --objectives is refused; a
                                      torn or damaged v3 checkpoint is
                                      salvaged to its longest checksummed
                                      record prefix with a warning; a
                                      checkpoint save that keeps failing is
                                      retried with backoff, then warned
                                      about once and the run continues
                                      uncheckpointed);
                                      --objectives declares the reported
                                      axes: energy adds the exact energy
                                      per iteration derived from the actor
                                      power annotations (the front itself
                                      is unchanged — energy is a monotone
                                      function of throughput), latency
                                      annotates each front point with the
                                      time of the observed actor's first
                                      completion (SDF only); --export-csv /
                                      --export-dot additionally write the
                                      front as a CSV table / Graphviz
                                      trade-off chart
    constraint <graph.xml> --throughput R [--actor NAME] [--json]
               [--no-static-prune] [--progress] [--trace-json FILE]
               [--serve ADDR] [--serve-linger SECS]
               [--metrics FILE] [--chrome-trace FILE] [--timeout SECS]
               [--max-evals N] [--max-states N] [--max-memory-mb M]
               [--checkpoint FILE] [--resume FILE]
                                      minimal storage meeting a throughput
                                      constraint (with evaluation
                                      statistics); a truncated run reports
                                      a sound but possibly non-minimal
                                      witness
    schedule <graph.xml> --dist 4,2 [--horizon N]
                                      extract and print the self-timed schedule
    convert <graph.xml> --to dot|xml  re-serialize the graph
    generate [--seed N] [--actors N] [--channels N] [--max-rate N]
             [--max-exec N] [--max-repetition N]
                                      emit a random consistent graph as XML
    gallery <name>                    emit a built-in benchmark graph as XML
                                      (example, bipartite, modem, cd2dat,
                                      satellite, h263decoder; modem-power,
                                      cd2dat-power and h263decoder-power
                                      carry actor power annotations for
                                      energy-aware runs; updown,
                                      line-scaler, h263rows and
                                      h263rows-power are cyclo-static and
                                      serialize in the CSDF dialect)
    csdf-analyze <graph.xml> --dist 4,2 [--actor NAME]
                                      throughput of a CSDF graph under one
                                      storage distribution
    csdf-explore <graph.xml> [--actor NAME] [--max-size N] [--threads N]
                 [--quantum R] [--csv] [--json] [--no-static-prune]
                 [--objectives storage,throughput[,energy]]
                 [--export-csv FILE] [--export-dot FILE]
                 [--no-warm-start] [--progress]
                 [--trace-json FILE] [--serve ADDR] [--serve-linger SECS]
                 [--metrics FILE] [--chrome-trace FILE]
                 [--timeout SECS] [--max-evals N] [--max-states N]
                 [--max-memory-mb M] [--checkpoint FILE] [--resume FILE]
                                      Pareto space of a CSDF graph;
                                      --threads parallelizes the analyses
                                      (0 = auto-detect) and --quantum
                                      coarsens the searched throughputs
                                      (reported with evaluator cache
                                      statistics); the resilience,
                                      telemetry, objective and export
                                      options behave as for explore,
                                      except that the latency axis is
                                      SDF-only and refused here
    chaos <graph.xml> [--seed-range A..B | --schedules N] [--json]
                                      run the exploration under N seeded,
                                      fully deterministic fault schedules
                                      (injected evaluation panics, spurious
                                      cancellations, arena-pressure spikes,
                                      torn checkpoint writes, failed
                                      renames) and machine-check the
                                      robustness contract on each: no
                                      escaped panics, exit codes within
                                      the documented 0/3/130/1 set, every
                                      reported Pareto point re-analyses
                                      fault-free to its reported
                                      throughput, traces stay well-formed
                                      JSON lines ending in one end event,
                                      and any published checkpoint loads
                                      (salvaged if damaged) and
                                      warm-starts a fault-free run back to
                                      the reference front; defaults to
                                      seeds 0..8, exits 1 when any
                                      schedule violates an invariant
    help                              show this message

analyze, explore, constraint, csdf-analyze and csdf-explore refuse models
with error-level check findings; pass --force to run them anyway.

EXIT CODES:
    0    success, exact result
    1    error (bad input, failed analysis, cancelled before any result)
    3    partial result: a deadline, evaluation budget or memory budget
         (--max-states / --max-memory-mb) truncated the run; the output
         is sound but incomplete
    130  interrupted (Ctrl-C); the run wound down gracefully — partial
         output printed, trace flushed, checkpoint saved

Degradation is always graceful: whatever truncates a run (deadline,
budget, watchdog, Ctrl-C), the front printed is sound, the --trace-json
stream still ends with its final end event, and the checkpoint on disk
stays loadable.
";

/// Runs the CLI with the given arguments (excluding the program name),
/// writing human-readable output to `out`. Returns the process exit code:
/// 0 for exact success, 1 for errors, 3 for deliberately truncated
/// (partial) results and 130 for graceful SIGINT wind-down.
pub fn run(raw_args: &[String], out: &mut dyn Write) -> i32 {
    match try_run(raw_args, out) {
        Ok(code) => code,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            1
        }
    }
}

fn try_run(raw_args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let parsed = args::parse(raw_args)?;
    let command = parsed
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let done = |r: Result<(), String>| r.map(|()| 0);
    match command {
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(0)
        }
        "info" => done(commands::info(&parsed, out)),
        "check" => done(commands::check(&parsed, out)),
        "analyze" => done(commands::analyze(&parsed, out)),
        "bounds" => done(commands::bounds(&parsed, out)),
        "explore" => commands::explore(&parsed, out),
        "constraint" => commands::constraint(&parsed, out),
        "schedule" => done(commands::schedule(&parsed, out)),
        "convert" => done(commands::convert(&parsed, out)),
        "generate" => done(commands::generate(&parsed, out)),
        "gallery" => done(commands::gallery(&parsed, out)),
        "csdf-analyze" => done(commands::csdf_analyze(&parsed, out)),
        "csdf-explore" => commands::csdf_explore(&parsed, out),
        "chaos" => chaos::chaos(&parsed, out),
        other => Err(format!("unknown command {other:?}; try `buffy help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> (i32, String) {
        let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&raw, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
        let (code, _) = run_to_string(&[]);
        assert_eq!(code, 0);
    }

    #[test]
    fn unknown_command_fails() {
        let (code, text) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn gallery_emits_xml_and_info_reads_it() {
        let (code, xml) = run_to_string(&["gallery", "example"]);
        assert_eq!(code, 0);
        assert!(xml.contains("applicationGraph"));

        // Write it to a temp file and summarize it.
        let path = std::env::temp_dir().join("buffy-cli-test-example.xml");
        std::fs::write(&path, &xml).unwrap();
        let (code, text) = run_to_string(&["info", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("repetition vector"), "{text}");
        assert!(text.contains("1/4"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_and_explore_example() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-analyze.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["analyze", p, "--dist", "4,2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("1/7"), "{text}");

        let (code, text) = run_to_string(&["explore", p, "--csv"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("6,1/7"), "{text}");
        assert!(text.contains("10,1/4"), "{text}");

        let (code, text) = run_to_string(&["constraint", p, "--throughput", "1/6"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("size 8"), "{text}");

        let (code, text) = run_to_string(&["schedule", p, "--dist", "4,2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("period"), "{text}");

        let (code, text) = run_to_string(&["convert", p, "--to", "dot"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("digraph"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csdf_commands() {
        let xml = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-csdf.xml");
        std::fs::write(&path, xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["csdf-analyze", p, "--dist", "4"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("throughput"), "{text}");

        let (code, text) = run_to_string(&["csdf-explore", p, "--csv"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("size,throughput"), "{text}");

        // --threads and --quantum are wired through; the human-readable
        // report carries the evaluator cache statistics.
        let (code, text) = run_to_string(&["csdf-explore", p, "--threads", "2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cache hits"), "{text}");
        let (code, text) = run_to_string(&["csdf-explore", p, "--quantum", "1/2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("Pareto points"), "{text}");

        // `explore` sniffs the dialect and routes CSDF inputs itself.
        let (code, text) = run_to_string(&["explore", p, "--threads", "2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cache hits"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csdf_analyses_refuse_error_models_unless_forced() {
        // Inconsistent cyclo-static rates: B001 at error level.
        let bad = r#"<sdf3 type="csdf"><applicationGraph name="bad"><csdf name="bad">
             <actor name="x"/><actor name="y"/>
             <channel name="fwd" srcActor="x" srcRate="2" dstActor="y" dstRate="1"/>
             <channel name="bwd" srcActor="y" srcRate="1" dstActor="x" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-csdf-preflight.xml");
        std::fs::write(&path, bad).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["csdf-explore", p]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("B001"), "{text}");
        assert!(text.contains("--force"), "{text}");

        let (code, text) = run_to_string(&["csdf-analyze", p, "--dist", "4,4"]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("B001"), "{text}");

        // --force skips the preflight; the analysis then reports the
        // inconsistency itself.
        let (code, text) = run_to_string(&["csdf-explore", p, "--force"]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("inconsistent"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_passes_clean_models() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-check-clean.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["check", p]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("no issues found"), "{text}");

        let (code, text) = run_to_string(&["check", p, "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"errors\":0"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_gallery_graphs_are_error_free() {
        for name in [
            "example",
            "bipartite",
            "modem",
            "cd2dat",
            "satellite",
            "h263decoder",
            "modem-power",
            "cd2dat-power",
            "h263decoder-power",
        ] {
            let (_, xml) = run_to_string(&["gallery", name]);
            let path = std::env::temp_dir().join(format!("buffy-cli-test-check-{name}.xml"));
            std::fs::write(&path, &xml).unwrap();
            let (code, text) = run_to_string(&["check", path.to_str().unwrap()]);
            assert_eq!(code, 0, "{name}: {text}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn check_flags_inconsistent_rates() {
        let bad = r#"<sdf3><applicationGraph name="bad"><sdf name="bad">
             <actor name="x"/><actor name="y"/>
             <channel name="fwd" srcActor="x" srcRate="2" dstActor="y" dstRate="1"/>
             <channel name="bwd" srcActor="y" srcRate="1" dstActor="x" dstRate="1"/>
           </sdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-check-bad.xml");
        std::fs::write(&path, bad).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["check", p]);
        assert_eq!(code, 1);
        assert!(text.contains("error[B001]"), "{text}");
        assert!(text.contains("hint"), "{text}");

        let (code, text) = run_to_string(&["check", p, "--json"]);
        assert_eq!(code, 1);
        assert!(text.contains("\"code\":\"B001\""), "{text}");
        assert!(text.contains("\"severity\":\"error\""), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_flags_token_free_cycle_and_infeasible_constraint() {
        let cyc = r#"<sdf3><applicationGraph name="cyc"><sdf name="cyc">
             <actor name="x"/><actor name="y"/>
             <channel name="fwd" srcActor="x" srcRate="1" dstActor="y" dstRate="1"/>
             <channel name="bwd" srcActor="y" srcRate="1" dstActor="x" dstRate="1"/>
           </sdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-check-cyc.xml");
        std::fs::write(&path, cyc).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["check", p]);
        assert_eq!(code, 1);
        assert!(text.contains("error[B003]"), "{text}");

        // Infeasible constraint on a clean graph: B005.
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let okp = std::env::temp_dir().join("buffy-cli-test-check-b005.xml");
        std::fs::write(&okp, &xml).unwrap();
        let (code, text) = run_to_string(&[
            "check",
            okp.to_str().unwrap(),
            "--throughput",
            "1/2",
            "--json",
        ]);
        assert_eq!(code, 1);
        assert!(text.contains("\"code\":\"B005\""), "{text}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&okp).ok();
    }

    #[test]
    fn check_deny_warnings_promotes_warnings() {
        // A starved self-loop is only a warning: exit 0 plain, 1 under
        // --deny-warnings.
        let warn = r#"<sdf3><applicationGraph name="w"><sdf name="w">
             <actor name="x"/>
             <channel name="s" srcActor="x" srcRate="2" dstActor="x" dstRate="2" initialTokens="1"/>
           </sdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-check-warn.xml");
        std::fs::write(&path, warn).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["check", p]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("warning[B008]"), "{text}");

        let (code, _) = run_to_string(&["check", p, "--deny-warnings"]);
        assert_eq!(code, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_space_threshold_drives_b009() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-check-b009.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        // At the default threshold the example graph is far too small.
        let (code, text) = run_to_string(&["check", p]);
        assert_eq!(code, 0, "{text}");
        assert!(!text.contains("B009"), "{text}");

        // Tightening the threshold surfaces the warning (still exit 0)
        // and its hint names the resilience options.
        let (code, text) = run_to_string(&["check", p, "--space-threshold", "1"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("warning[B009]"), "{text}");
        assert!(text.contains("--checkpoint"), "{text}");
        let (code, _) = run_to_string(&["check", p, "--space-threshold", "1", "--deny-warnings"]);
        assert_eq!(code, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyses_refuse_error_models_unless_forced() {
        let cyc = r#"<sdf3><applicationGraph name="cyc"><sdf name="cyc">
             <actor name="x"/><actor name="y"/>
             <channel name="fwd" srcActor="x" srcRate="1" dstActor="y" dstRate="1"/>
             <channel name="bwd" srcActor="y" srcRate="1" dstActor="x" dstRate="1"/>
           </sdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-preflight.xml");
        std::fs::write(&path, cyc).unwrap();
        let p = path.to_str().unwrap();

        for cmd in ["analyze", "explore"] {
            let (code, text) = run_to_string(&[cmd, p]);
            assert_eq!(code, 1, "{cmd}: {text}");
            assert!(text.contains("B003"), "{cmd}: {text}");
            assert!(text.contains("--force"), "{cmd}: {text}");
        }
        let (code, text) = run_to_string(&["constraint", p, "--throughput", "1/2"]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("B003"), "{text}");

        // --force runs the analysis; the deadlock is then reported
        // honestly by the engine itself.
        let (code, text) = run_to_string(&["analyze", p, "--force"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("deadlock"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_reads_csdf_models() {
        let xml = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-check-csdf.xml");
        std::fs::write(&path, xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["check", p, "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"kind\":\"csdf\""), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_option_is_rejected() {
        let (code, text) = run_to_string(&["explore", "g.xml", "--maxx-states", "100"]);
        assert_eq!(code, 1);
        assert!(text.contains("--maxx-states"), "{text}");
        // Misspelling an observability option is rejected the same way —
        // not silently treated as a positional argument.
        let (code, text) = run_to_string(&["explore", "g.xml", "--trace-jsonl", "t.jsonl"]);
        assert_eq!(code, 1);
        assert!(text.contains("--trace-jsonl"), "{text}");
    }

    #[test]
    fn explore_emits_stats_and_trace() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-observe.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();
        let trace = std::env::temp_dir().join("buffy-cli-test-observe-trace.jsonl");
        let t = trace.to_str().unwrap();

        // --json carries the statistics in machine-readable form.
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--json",
            "--trace-json",
            t,
            "--threads",
            "0",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"stats\":{\"evaluations\":"), "{text}");
        assert!(text.contains("\"static_prunes\":"), "{text}");
        assert!(text.contains("\"dominance_prunes\":"), "{text}");
        assert!(text.contains("\"pareto\":[{\"size\":6,"), "{text}");

        // The trace is JSON-lines covering all three event kinds.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_text.contains("\"event\":\"evaluation\""),
            "{trace_text}"
        );
        assert!(
            trace_text.contains("\"event\":\"cache-hit\""),
            "{trace_text}"
        );
        assert!(trace_text.contains("\"event\":\"pareto\""), "{trace_text}");
        assert!(trace_text.contains("\"event\":\"phase\""), "{trace_text}");
        for line in trace_text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        // constraint and csdf-explore report the statistics too.
        let (code, text) = run_to_string(&["constraint", p, "--throughput", "1/6", "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"point\":{\"size\":8,"), "{text}");
        assert!(text.contains("\"stats\":{\"evaluations\":"), "{text}");
        let (code, text) = run_to_string(&["constraint", p, "--throughput", "1/6"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cache hits"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn no_static_prune_front_is_byte_identical() {
        // bipartite actually exercises both prune directions; the CSV
        // front must not depend on whether the oracle ran.
        let (_, xml) = run_to_string(&["gallery", "bipartite"]);
        let path = std::env::temp_dir().join("buffy-cli-test-nopr.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();
        let trace = std::env::temp_dir().join("buffy-cli-test-nopr-trace.jsonl");
        let t = trace.to_str().unwrap();

        let (code, pruned) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--csv",
            "--trace-json",
            t,
        ]);
        assert_eq!(code, 0, "{pruned}");
        let (code, unpruned) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--csv",
            "--no-static-prune",
        ]);
        assert_eq!(code, 0, "{unpruned}");
        assert_eq!(pruned, unpruned);

        // The pruned run records its decisions in the trace.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_text.contains("\"event\":\"pruned\"")
                && trace_text.contains("\"kind\":\"static-bound\""),
            "{trace_text}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn bounds_renders_the_certificate() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-bounds.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        // Defaults to the lower-bound distribution ⟨4, 2⟩ (bound 1/7).
        let (code, text) = run_to_string(&["bounds", p]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("throughput ≤ 1/7"), "{text}");
        assert!(text.contains("per-channel relaxed bounds"), "{text}");

        // An explicit distribution and the machine-readable form.
        let (code, text) = run_to_string(&["bounds", p, "--dist", "7,3", "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("\"certificate\":{\"bound\":\"1/4\""),
            "{text}"
        );
        assert!(text.contains("\"channel\":\"alpha\""), "{text}");
        assert!(text.contains("\"deadlocked\":false"), "{text}");

        // Wrong arity is a proper error, not a panic.
        let (code, text) = run_to_string(&["bounds", p, "--dist", "7"]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("2 channels"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bounds_handles_csdf_inputs() {
        let xml = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-bounds-csdf.xml");
        std::fs::write(&path, xml).unwrap();
        let (code, text) = run_to_string(&["bounds", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("(csdf)"), "{text}");
        assert!(text.contains("certificate:"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explore_exports_metrics_and_chrome_trace() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-telemetry.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();
        let prom = std::env::temp_dir().join("buffy-cli-test-telemetry.prom");
        let chrome = std::env::temp_dir().join("buffy-cli-test-telemetry-trace.json");

        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--json",
            "--metrics",
            prom.to_str().unwrap(),
            "--chrome-trace",
            chrome.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");
        // The JSON report gains the telemetry section: latency
        // percentiles and per-shard memo-cache statistics.
        assert!(
            text.contains("\"telemetry\":{\"eval_latency_ns\":{"),
            "{text}"
        );
        assert!(text.contains("\"p99\":"), "{text}");
        assert!(text.contains("\"memo_shards\":[{\"shard\":0,"), "{text}");

        // Prometheus textfile: HELP/TYPE headers and the latency family.
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(
            prom_text.contains("# TYPE buffy_eval_latency_ns histogram"),
            "{prom_text}"
        );
        assert!(
            prom_text.contains("buffy_eval_latency_ns_count"),
            "{prom_text}"
        );
        assert!(
            prom_text.contains("buffy_memo_shard_hits_total{shard=\"0\"}"),
            "{prom_text}"
        );

        // Chrome trace: the trace-event envelope with eval spans and
        // phase spans.
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        assert!(
            chrome_text.starts_with("{\"traceEvents\":["),
            "{chrome_text}"
        );
        assert!(chrome_text.contains("\"name\":\"eval\""), "{chrome_text}");
        assert!(
            chrome_text.contains("\"name\":\"phase:bounds\""),
            "{chrome_text}"
        );
        assert!(chrome_text.contains("\"ph\":\"X\""), "{chrome_text}");

        // constraint and csdf-explore accept the exporters too.
        let (code, text) = run_to_string(&[
            "constraint",
            p,
            "--throughput",
            "1/6",
            "--json",
            "--metrics",
            prom.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"telemetry\":{"), "{text}");
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(
            prom_text.contains("buffy_sizes_pruned_total{phase=\"constraint-search\"}"),
            "{prom_text}"
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&prom).ok();
        std::fs::remove_file(&chrome).ok();
    }

    #[test]
    fn csdf_explore_exports_telemetry() {
        let xml = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let path = std::env::temp_dir().join("buffy-cli-test-csdf-telemetry.xml");
        std::fs::write(&path, xml).unwrap();
        let chrome = std::env::temp_dir().join("buffy-cli-test-csdf-telemetry.json");

        let (code, text) = run_to_string(&[
            "csdf-explore",
            path.to_str().unwrap(),
            "--json",
            "--chrome-trace",
            chrome.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"telemetry\":{"), "{text}");
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        assert!(
            chrome_text.contains("\"name\":\"csdf-explore\""),
            "{chrome_text}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&chrome).ok();
    }

    #[test]
    fn uncreatable_trace_path_fails_cleanly() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-badtrace.xml");
        std::fs::write(&path, &xml).unwrap();
        let (code, text) = run_to_string(&[
            "explore",
            path.to_str().unwrap(),
            "--trace-json",
            "/nonexistent-dir/trace.jsonl",
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("cannot create trace file"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eval_budget_yields_partial_json_and_exit_code_3() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-partial.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        // A generous budget changes nothing: exact result, exit 0.
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--json",
            "--max-evals",
            "100000",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"completeness\":{\"exact\":true"), "{text}");
        assert!(text.contains("\"skipped\":[]"), "{text}");
        let evals: u64 = text
            .split("\"evaluations\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(evals > 2, "{text}");

        // One evaluation short of the full run: a sound partial front with
        // a machine-readable completeness marker, exit code 3.
        let budget = (evals - 1).to_string();
        let trace = std::env::temp_dir().join("buffy-cli-test-partial-trace.jsonl");
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--json",
            "--max-evals",
            &budget,
            "--trace-json",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(code, 3, "{text}");
        assert!(
            text.contains("\"completeness\":{\"exact\":false,\"truncated_by\":\"eval-budget\""),
            "{text}"
        );
        // The trace ends with the final end event naming the same reason.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let last = trace_text.lines().last().unwrap();
        assert!(
            last.contains("\"event\":\"end\"") && last.contains("\"reason\":\"eval-budget\""),
            "{last}"
        );

        // The text rendering names the partiality too.
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--max-evals",
            &budget,
        ]);
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("PARTIAL RESULT"), "{text}");

        // A budget of 1 cannot even finish the bounds phase: a clean
        // error, not a crash.
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--max-evals",
            "1",
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("cancelled"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn checkpoint_resume_reproduces_the_run() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-ckpt.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();
        let ckpt = std::env::temp_dir().join("buffy-cli-test-ckpt.ckpt");
        let c = ckpt.to_str().unwrap();

        // Clean reference run.
        let (code, clean) = run_to_string(&["explore", p, "--algorithm", "exhaustive", "--csv"]);
        assert_eq!(code, 0, "{clean}");

        // Interrupted run (evaluation budget) writing a checkpoint.
        let (code, _) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--csv",
            "--max-evals",
            "6",
            "--checkpoint",
            c,
        ]);
        assert!(code == 1 || code == 3, "unexpected code {code}");
        assert!(ckpt.exists());

        // Resume from the checkpoint: byte-identical front to the clean
        // run, and the replayed evaluations cost no analysis time.
        let (code, resumed) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--csv",
            "--resume",
            c,
        ]);
        assert_eq!(code, 0, "{resumed}");
        assert_eq!(resumed, clean);

        // Resuming against a different graph is refused.
        let (_, other_xml) = run_to_string(&["gallery", "modem"]);
        let other = std::env::temp_dir().join("buffy-cli-test-ckpt-other.xml");
        std::fs::write(&other, &other_xml).unwrap();
        let (code, text) = run_to_string(&[
            "explore",
            other.to_str().unwrap(),
            "--algorithm",
            "exhaustive",
            "--resume",
            c,
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("different graph"), "{text}");

        // A torn checkpoint (truncated mid-file) is salvaged: the valid
        // record prefix warm-starts the run and the front still matches
        // the clean run byte for byte.
        let intact = std::fs::read(&ckpt).unwrap();
        let mut bytes = intact.clone();
        let len = bytes.len();
        bytes.truncate(len / 2);
        std::fs::write(&ckpt, &bytes).unwrap();
        let (code, salvaged) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--csv",
            "--resume",
            c,
        ]);
        assert_eq!(code, 0, "{salvaged}");
        assert_eq!(salvaged, clean);

        // A checkpoint with a damaged header is refused, not silently
        // ignored — there is nothing sound to salvage.
        let text = String::from_utf8(intact).unwrap();
        std::fs::write(&ckpt, text.replacen("fingerprint", "fingerpront", 1)).unwrap();
        let (code, text) =
            run_to_string(&["explore", p, "--algorithm", "exhaustive", "--resume", c]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("corrupt"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&other).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    /// The example graph with every actor annotated `active=10, idle=2`
    /// — enough to make the energy axis strictly positive and vary with
    /// throughput.
    fn powered_example_xml() -> String {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        xml.replace(
            "</processor>",
            "</processor>\n          <power active=\"10\" idle=\"2\"/>",
        )
    }

    #[test]
    fn energy_objective_reports_exact_energy() {
        let path = std::env::temp_dir().join("buffy-cli-test-energy.xml");
        std::fs::write(&path, powered_example_xml()).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,energy",
            "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("\"objectives\":[\"storage\",\"throughput\",\"energy\"]"),
            "{text}"
        );
        // Every front point carries an exact, positive rational energy,
        // and the 2D shape of the front is untouched by the declaration.
        assert!(text.contains("\"pareto\":[{\"size\":6,"), "{text}");
        assert!(text.contains("\"energy\":\""), "{text}");
        assert!(!text.contains("\"energy\":\"0\""), "{text}");

        // CSV gains the energy column between throughput and the
        // distribution.
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,energy",
            "--csv",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.starts_with("size,throughput,energy,distribution\n"),
            "{text}"
        );
        assert!(text.contains("6,1/7,"), "{text}");

        // The default space stays exactly two columns.
        let (code, text) = run_to_string(&["explore", p, "--csv"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.starts_with("size,throughput,distribution\n"), "{text}");

        // A space without the mandatory pair is refused up front.
        let (code, text) = run_to_string(&["explore", p, "--objectives", "storage"]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("invalid --objectives"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn latency_objective_annotates_the_front() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-latency.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,latency",
            "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        // The size-6 point is γ = ⟨4, 2⟩ whose first output completes at
        // t = 9 (see buffy-analysis::latency), and the front itself is
        // the unchanged 2D one.
        assert!(text.contains("\"pareto\":[{\"size\":6,"), "{text}");
        assert!(text.contains("\"latency\":9"), "{text}");

        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,latency",
            "--csv",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.starts_with("size,throughput,latency,distribution\n"),
            "{text}"
        );

        // The latency axis is SDF-only: the CSDF explorer refuses it.
        let csdf = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let cpath = std::env::temp_dir().join("buffy-cli-test-latency-csdf.xml");
        std::fs::write(&cpath, csdf).unwrap();
        let (code, text) = run_to_string(&[
            "csdf-explore",
            cpath.to_str().unwrap(),
            "--objectives",
            "storage,throughput,latency",
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("SDF-only"), "{text}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cpath).ok();
    }

    #[test]
    fn front_export_writes_csv_and_dot() {
        let path = std::env::temp_dir().join("buffy-cli-test-export.xml");
        std::fs::write(&path, powered_example_xml()).unwrap();
        let p = path.to_str().unwrap();
        let csv = std::env::temp_dir().join("buffy-cli-test-export-front.csv");
        let dot = std::env::temp_dir().join("buffy-cli-test-export-front.dot");

        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,energy",
            "--export-csv",
            csv.to_str().unwrap(),
            "--export-dot",
            dot.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");
        // The exported CSV matches what --csv prints to stdout.
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(
            csv_text.starts_with("size,throughput,energy,distribution\n"),
            "{csv_text}"
        );
        assert!(csv_text.contains("6,1/7,"), "{csv_text}");
        // The DOT slice chains one record node per point in size order.
        let dot_text = std::fs::read_to_string(&dot).unwrap();
        assert!(dot_text.starts_with("digraph "), "{dot_text}");
        assert!(dot_text.contains("shape=record"), "{dot_text}");
        assert!(
            dot_text.contains("size 6|throughput 1/7|energy "),
            "{dot_text}"
        );
        assert!(dot_text.contains("p0 -> p1;"), "{dot_text}");

        // csdf-explore exports through the same options.
        let csdf = r#"<sdf3 type="csdf"><applicationGraph name="ud"><csdf name="ud">
             <actor name="p"/><actor name="c"/>
             <channel name="d" srcActor="p" srcRate="2,0" dstActor="c" dstRate="1"/>
           </csdf></applicationGraph></sdf3>"#;
        let cpath = std::env::temp_dir().join("buffy-cli-test-export-csdf.xml");
        std::fs::write(&cpath, csdf).unwrap();
        let (code, text) = run_to_string(&[
            "csdf-explore",
            cpath.to_str().unwrap(),
            "--export-dot",
            dot.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");
        let dot_text = std::fs::read_to_string(&dot).unwrap();
        assert!(dot_text.contains("size "), "{dot_text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cpath).ok();
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&dot).ok();
    }

    #[test]
    fn checkpoint_records_objectives_and_resume_validates_them() {
        let path = std::env::temp_dir().join("buffy-cli-test-ckpt-obj.xml");
        std::fs::write(&path, powered_example_xml()).unwrap();
        let p = path.to_str().unwrap();
        let ckpt = std::env::temp_dir().join("buffy-cli-test-ckpt-obj.ckpt");
        let c = ckpt.to_str().unwrap();

        // Truncated energy-aware run writing a checkpoint.
        let (code, _) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--objectives",
            "storage,throughput,energy",
            "--max-evals",
            "6",
            "--checkpoint",
            c,
        ]);
        assert!(code == 1 || code == 3, "unexpected code {code}");
        assert!(ckpt.exists());

        // Resuming in the default 2D space is refused with a pointer at
        // the fix.
        let (code, text) =
            run_to_string(&["explore", p, "--algorithm", "exhaustive", "--resume", c]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("objectives"), "{text}");

        // Resuming with the matching space reproduces the clean run's
        // front byte for byte.
        let (code, clean) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--objectives",
            "storage,throughput,energy",
            "--csv",
        ]);
        assert_eq!(code, 0, "{clean}");
        let (code, resumed) = run_to_string(&[
            "explore",
            p,
            "--algorithm",
            "exhaustive",
            "--objectives",
            "storage,throughput,energy",
            "--csv",
            "--resume",
            c,
        ]);
        assert_eq!(code, 0, "{resumed}");
        assert_eq!(resumed, clean);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn timeout_option_is_validated() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-timeout.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["explore", p, "--timeout", "abc"]);
        assert_eq!(code, 1);
        assert!(text.contains("--timeout"), "{text}");
        let (code, text) = run_to_string(&["explore", p, "--timeout", "-1"]);
        assert_eq!(code, 1);
        assert!(text.contains("positive"), "{text}");
        // A generous timeout leaves the run exact.
        let (code, text) = run_to_string(&["explore", p, "--timeout", "3600"]);
        assert_eq!(code, 0, "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_roundtrips() {
        let (code, xml) = run_to_string(&["generate", "--seed", "5", "--actors", "4"]);
        assert_eq!(code, 0);
        assert!(buffy_graph::xml::read_sdf_xml(&xml).is_ok());
    }

    #[test]
    fn bad_inputs_are_reported() {
        let (code, text) = run_to_string(&["analyze", "/nonexistent/file.xml"]);
        assert_eq!(code, 1);
        assert!(text.contains("error"), "{text}");
        let (code, _) = run_to_string(&["constraint", "x.xml"]);
        assert_eq!(code, 1);
        let (code, text) = run_to_string(&["gallery", "nope"]);
        assert_eq!(code, 1);
        assert!(text.contains("unknown gallery graph"), "{text}");
    }

    #[test]
    fn malformed_documents_fail_cleanly_across_commands() {
        // Every command that reads a graph must turn a malformed document
        // into exit 1 with a diagnostic — never a panic.
        let corpus: &[(&str, &str)] = &[
            ("truncated", "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\"><actor na"),
            ("negative rate", "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\">\
              <actor name=\"x\"/><actor name=\"y\"/>\
              <channel name=\"c\" srcActor=\"x\" srcRate=\"-2\" dstActor=\"y\" dstRate=\"1\"/>\
              </sdf></applicationGraph></sdf3>"),
            ("overflowing rate", "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\">\
              <actor name=\"x\"/><actor name=\"y\"/>\
              <channel name=\"c\" srcActor=\"x\" srcRate=\"99999999999999999999\" dstActor=\"y\" dstRate=\"1\"/>\
              </sdf></applicationGraph></sdf3>"),
            ("duplicate actors", "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\">\
              <actor name=\"x\"/><actor name=\"x\"/>\
              </sdf></applicationGraph></sdf3>"),
            ("empty file", ""),
        ];
        for (label, doc) in corpus {
            let path = std::env::temp_dir().join(format!(
                "buffy-cli-test-malformed-{}.xml",
                label.replace(' ', "-")
            ));
            std::fs::write(&path, doc).unwrap();
            let p = path.to_str().unwrap();
            for cmd in [
                vec!["check", p],
                vec!["info", p],
                vec!["analyze", p, "--dist", "1,1"],
                vec!["explore", p],
                vec!["csdf-explore", p],
            ] {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_to_string(&cmd)));
                let (code, text) = match outcome {
                    Ok(pair) => pair,
                    Err(_) => panic!("{label}: {cmd:?} panicked"),
                };
                assert_eq!(code, 1, "{label}: {cmd:?} should fail cleanly: {text}");
                assert!(
                    text.contains("error"),
                    "{label}: {cmd:?} lacks diagnostic: {text}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn adversarial_power_values_surface_overflow_not_panic() {
        // u64::MAX active power times a u64::MAX execution time exceeds
        // even the i128 energy accumulator; the checked paths must surface
        // a clean arithmetic-overflow diagnostic through explore.
        let hostile = format!(
            "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\">\
             <actor name=\"x\"/><actor name=\"y\"/>\
             <channel name=\"c\" srcActor=\"x\" srcRate=\"1\" dstActor=\"y\" dstRate=\"1\"/>\
             </sdf><sdfProperties>\
             <actorProperties actor=\"x\">\
             <processor default=\"true\"><executionTime time=\"{max}\"/></processor>\
             <power active=\"{max}\" idle=\"0\"/>\
             </actorProperties></sdfProperties></applicationGraph></sdf3>",
            max = u64::MAX
        );
        let path = std::env::temp_dir().join("buffy-cli-test-power-overflow.xml");
        std::fs::write(&path, &hostile).unwrap();
        let p = path.to_str().unwrap();

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_to_string(&["explore", p, "--objectives", "storage,throughput,energy"])
        }));
        let (code, text) = outcome.expect("overflow must not panic");
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("overflow"), "{text}");

        // Extreme power alone (with sane execution times) stays exact:
        // the i128 coefficients absorb it, on the energy axis or off it.
        let saturated = hostile.replace(&format!("time=\"{}\"", u64::MAX), "time=\"2\"");
        std::fs::write(&path, &saturated).unwrap();
        let (code, text) = run_to_string(&[
            "explore",
            p,
            "--objectives",
            "storage,throughput,energy",
            "--csv",
        ]);
        assert_eq!(code, 0, "{text}");
        let (code, text) = run_to_string(&["explore", p, "--csv"]);
        assert_eq!(code, 0, "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_smoke_on_the_example_graph() {
        let (_, xml) = run_to_string(&["gallery", "example"]);
        let path = std::env::temp_dir().join("buffy-cli-test-chaos.xml");
        std::fs::write(&path, &xml).unwrap();
        let p = path.to_str().unwrap();

        let (code, text) = run_to_string(&["chaos", p, "--schedules", "4"]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("4/4 schedules upheld all invariants"),
            "{text}"
        );

        let (code, text) = run_to_string(&["chaos", p, "--seed-range", "3..5", "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"schedules\":2"), "{text}");
        assert!(text.contains("\"failed\":0"), "{text}");

        // Invalid ranges are rejected before any run starts.
        let (code, text) = run_to_string(&["chaos", p, "--seed-range", "5..5"]);
        assert_eq!(code, 1);
        assert!(text.contains("seed-range"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
