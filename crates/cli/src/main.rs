//! The `buffy` binary: thin wrapper around [`buffy_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(buffy_cli::run(&args, &mut stdout));
}
