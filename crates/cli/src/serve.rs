//! CLI lifecycle of the embedded observability server (`--serve ADDR`).
//!
//! `explore`, `constraint` and `csdf-explore` accept `--serve ADDR`: a
//! [`LiveObserver`] is teed into the run's observer chain and a
//! [`buffy_obs::ObsServer`] serves `/`, `/healthz`, `/metrics`,
//! `/status` and `/events` for the duration of the command. When the
//! search completes, the terminal `end` event is published and the
//! server keeps answering — serving the *final* front, counters and
//! metrics — for `--serve-linger SECS` (default 0) before the process
//! exits. Attaching the server never changes a result: the observer
//! surface is read-only, so fronts and statistics stay byte-identical
//! with `--serve` on or off at any thread count.

use crate::args::ParsedArgs;
use crate::telemetry::TelemetrySession;
use buffy_core::LiveObserver;
use buffy_obs::{ObsServer, ServeState};
use std::time::Duration;

/// One command's observability-server scope: the teed [`LiveObserver`]
/// plus the running server.
pub(crate) struct ServeSession {
    live: LiveObserver,
    server: ObsServer,
    linger: Duration,
}

impl ServeSession {
    /// Starts the server when `--serve ADDR` was given; `None` otherwise.
    ///
    /// Must be called after the [`TelemetrySession`] is built: `--serve`
    /// makes it install a recorder, and the server holds a handle for
    /// live `/metrics` scrapes.
    ///
    /// # Errors
    ///
    /// Rejects an unbindable address, a malformed `--serve-linger`, or
    /// `--serve-linger` without `--serve`.
    pub(crate) fn from_options(
        parsed: &ParsedArgs,
        graph: &str,
        algorithm: &str,
        telemetry: &TelemetrySession,
    ) -> Result<Option<ServeSession>, String> {
        let linger_secs = parsed.get::<f64>("serve-linger")?;
        let Some(addr) = parsed.options.get("serve") else {
            if linger_secs.is_some() {
                return Err("--serve-linger requires --serve".into());
            }
            return Ok(None);
        };
        let linger = match linger_secs {
            None => Duration::ZERO,
            Some(secs) if secs.is_finite() && secs >= 0.0 => Duration::from_secs_f64(secs),
            Some(_) => return Err("--serve-linger must be a non-negative number of seconds".into()),
        };
        let live = LiveObserver::new();
        let recorder = telemetry
            .recorder()
            .expect("--serve makes the telemetry session install a recorder");
        let state = ServeState {
            graph: graph.to_string(),
            algorithm: algorithm.to_string(),
            stats: live.stats(),
            ring: live.ring(),
            recorder,
            budget_evaluations: parsed.get("max-evals")?,
        };
        let server = ObsServer::start(addr, state)
            .map_err(|e| format!("cannot serve observability on {addr}: {e}"))?;
        eprintln!(
            "[buffy] serving observability on http://{}",
            server.local_addr()
        );
        Ok(Some(ServeSession {
            live,
            server,
            linger,
        }))
    }

    /// The observer to tee into the run's observer chain.
    pub(crate) fn observer(&self) -> &LiveObserver {
        &self.live
    }

    /// Publishes the terminal `end` event, serves the final state for
    /// the linger window, then shuts the server down.
    pub(crate) fn finish(mut self, reason: &str) {
        self.live.finish(reason);
        if !self.linger.is_zero() {
            std::thread::sleep(self.linger);
        }
        self.server.shutdown();
    }
}

impl Drop for ServeSession {
    /// Exit paths that never reach [`finish`](ServeSession::finish) — an
    /// early `?`, a contained panic — still publish a terminal event so
    /// attached `/events` clients are released instead of hanging until
    /// the socket dies. No linger on this path.
    fn drop(&mut self) {
        self.live.finish("aborted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn parsed(extra: &[&str]) -> ParsedArgs {
        let mut raw: Vec<String> = vec!["explore".into(), "g.xml".into()];
        raw.extend(extra.iter().map(|s| s.to_string()));
        parse(&raw).unwrap()
    }

    fn expect_err(result: Result<Option<ServeSession>, String>) -> String {
        match result {
            Err(message) => message,
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn absent_serve_is_none() {
        let p = parsed(&[]);
        let telemetry = TelemetrySession::from_options(&p);
        assert!(ServeSession::from_options(&p, "g", "explore", &telemetry)
            .unwrap()
            .is_none());
    }

    #[test]
    fn linger_without_serve_is_rejected() {
        let p = parsed(&["--serve-linger", "2"]);
        let telemetry = TelemetrySession::from_options(&p);
        let err = expect_err(ServeSession::from_options(&p, "g", "explore", &telemetry));
        assert!(err.contains("--serve-linger requires --serve"), "{err}");
    }

    #[test]
    fn negative_linger_is_rejected() {
        let p = parsed(&["--serve", "127.0.0.1:0", "--serve-linger", "-1"]);
        let telemetry = TelemetrySession::from_options(&p);
        let err = expect_err(ServeSession::from_options(&p, "g", "explore", &telemetry));
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn unbindable_address_is_a_proper_error() {
        let p = parsed(&["--serve", "256.0.0.1:99999"]);
        let telemetry = TelemetrySession::from_options(&p);
        let err = expect_err(ServeSession::from_options(&p, "g", "explore", &telemetry));
        assert!(err.contains("cannot serve observability"), "{err}");
    }

    #[test]
    fn session_serves_status_until_finish() {
        let p = parsed(&["--serve", "127.0.0.1:0"]);
        let telemetry = TelemetrySession::from_options(&p);
        let session = ServeSession::from_options(&p, "modem", "explore", &telemetry)
            .unwrap()
            .expect("--serve given");
        let addr = session.server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.contains("\"graph\":\"modem\""), "{response}");
        assert!(response.contains("\"finished\":false"), "{response}");
        session.finish("exact");
        // After finish the server is gone; connecting must fail.
        assert!(TcpStream::connect(addr).is_err());
        drop(telemetry);
    }
}
