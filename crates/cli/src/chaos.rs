//! `buffy chaos`: a deterministic fault-injection harness.
//!
//! Runs the exploration of one graph under N seeded fault schedules
//! ([`FaultPlan::chaos`]) and machine-checks the robustness contract on
//! every run:
//!
//! - **No escaped panics.** Injected evaluation panics are contained by
//!   the pipeline; a panic unwinding out of the explorer is a violation.
//! - **Exit-code contract.** Every schedule maps to one of the
//!   documented codes: 0 (exact), 3 (truncated), 130 (interrupt), 1
//!   (error before any result).
//! - **Sound fronts.** Each reported Pareto point is re-analysed
//!   fault-free; the reported throughput must be exact. A faulted run
//!   may *miss* points (degraded, partial front) but must never report
//!   a wrong one.
//! - **Determinism.** A schedule that happened to inject nothing that
//!   can perturb the search (no evaluation panics, no spurious cancels,
//!   no arena-pressure spikes) must reproduce the fault-free front
//!   byte for byte.
//! - **Well-formed traces.** The JSON-lines trace is intact on every
//!   exit path and ends with a single `end` event.
//! - **Recoverable checkpoints.** Whatever checkpoint the faulted run
//!   published (saves themselves are fault-injected: torn writes,
//!   failed renames, retried with backoff) must load — strictly or via
//!   prefix salvage — and a fault-free run warm-started from it must
//!   complete to the reference front.
//!
//! All of it is a pure function of the seed: no wall clock, no OS
//! randomness, so a failing seed replays exactly.

use crate::args::ParsedArgs;
use crate::commands::{end_reason, exit_code_for, is_csdf_document};
use crate::observe::{CheckpointConfig, CliObserver};
use buffy_analysis::{fx_hash, AnalysisError};
use buffy_core::{
    explore_dependency_guided_observed, CancelReason, CancelToken, Checkpoint, ExploreError,
    ExploreOptions, FaultPlan, FaultSite, ObjectiveSpace, ParetoPoint, WarmStart,
};
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

type Out<'a> = &'a mut dyn Write;

/// States the chaos watchdog allows per schedule. Two injected
/// arena-pressure spikes (1 Mi states each) exhaust it, so the
/// [`CancelReason::MemoryBudget`] degradation path is exercised
/// organically by the fault rates.
const CHAOS_STATE_BUDGET: u64 = 1 << 21;

/// The seed range to run: `--seed-range A..B`, `--schedules N` (= 0..N),
/// default 0..8.
fn seed_range(parsed: &ParsedArgs) -> Result<std::ops::Range<u64>, String> {
    if let Some(spec) = parsed.options.get("seed-range") {
        let (a, b) = spec
            .split_once("..")
            .ok_or_else(|| format!("invalid --seed-range {spec:?} (expected A..B)"))?;
        let a: u64 = a
            .parse()
            .map_err(|_| format!("invalid --seed-range start {a:?}"))?;
        let b: u64 = b
            .parse()
            .map_err(|_| format!("invalid --seed-range end {b:?}"))?;
        if a >= b {
            return Err(format!("--seed-range {spec:?} is empty"));
        }
        return Ok(a..b);
    }
    match parsed.get::<u64>("schedules")? {
        Some(0) => Err("--schedules must be positive".into()),
        Some(n) => Ok(0..n),
        None => Ok(0..8),
    }
}

/// Canonical rendering of a front for equality checks: one
/// `size,throughput,distribution` record per point.
fn front_sig(points: &[ParetoPoint]) -> String {
    let mut s = String::new();
    for p in points {
        s.push_str(&format!("{},{},{}\n", p.size, p.throughput, p.distribution));
    }
    s
}

/// Whether `plan` injected any fault that can perturb the search result
/// (as opposed to the checkpoint-save faults, which only touch the
/// sidecar file).
fn perturbed_search(plan: &FaultPlan) -> bool {
    plan.injected(FaultSite::EvalPanic) > 0
        || plan.injected(FaultSite::SpuriousCancel) > 0
        || plan.injected(FaultSite::ArenaPressure) > 0
}

/// Validates the JSON-lines trace of one schedule: every line is a
/// braced object and the stream ends with exactly one `end` event.
fn check_trace(path: &Path, violations: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            violations.push(format!("trace unreadable: {e}"));
            return;
        }
    };
    let mut ends = 0usize;
    for line in text.lines() {
        if !(line.starts_with('{') && line.ends_with('}')) {
            violations.push(format!("malformed trace line {line:?}"));
            return;
        }
        if line.contains("\"event\":\"end\"") {
            ends += 1;
        }
    }
    match text.lines().last() {
        Some(last) if last.contains("\"event\":\"end\"") && ends == 1 => {}
        _ => violations.push(format!(
            "trace does not end with a single end event ({ends})"
        )),
    }
}

/// The outcome of one fault schedule, as reported and as summarised in
/// `--json` mode.
struct SeedOutcome {
    seed: u64,
    exit_code: i32,
    points: usize,
    injected: u64,
    /// The clean error message, when the schedule ended in exit 1.
    error: Option<String>,
    violations: Vec<String>,
}

/// One graph-kind-independent view of "run the explorer once". The two
/// closures hide the SDF/CSDF type split from the invariant machinery.
struct Harness<'a> {
    fingerprint: u64,
    channels: usize,
    /// Fault-free reference front, computed once.
    reference: String,
    /// Runs one exploration; returns (front, exit code, exact) or a
    /// clean error string (exit 1).
    #[allow(clippy::type_complexity)]
    run: Box<
        dyn Fn(
                Option<Arc<FaultPlan>>,
                Option<Arc<WarmStart>>,
                &CliObserver,
            ) -> Result<(Vec<ParetoPoint>, i32, bool), String>
            + 'a,
    >,
    /// Fault-free throughput of one distribution, for soundness checks.
    #[allow(clippy::type_complexity)]
    analyze: Box<dyn Fn(&StorageDistribution) -> Result<Rational, String> + 'a>,
}

/// Runs one seeded fault schedule through `harness` and machine-checks
/// every invariant.
fn run_seed(harness: &Harness<'_>, seed: u64, dir: &Path) -> SeedOutcome {
    let plan = Arc::new(FaultPlan::chaos(seed));
    let trace_path = dir.join(format!("trace-{seed}.jsonl"));
    let ckpt_path = dir.join(format!("run-{seed}.ckpt"));
    let mut violations = Vec::new();

    let observer = CliObserver::from_options(
        false,
        trace_path.to_str(),
        Some(CheckpointConfig {
            path: ckpt_path.clone(),
            fingerprint: harness.fingerprint,
            channels: harness.channels,
            objectives: ObjectiveSpace::default_2d(),
            faults: Some(plan.clone()),
        }),
    );
    let observer = match observer {
        Ok(o) => o,
        Err(e) => {
            return SeedOutcome {
                seed,
                exit_code: 1,
                points: 0,
                injected: 0,
                error: None,
                violations: vec![format!("cannot set up observer: {e}")],
            }
        }
    };

    let attempt = catch_unwind(AssertUnwindSafe(|| {
        (harness.run)(Some(plan.clone()), None, &observer)
    }));
    let mut error = None;
    let (front, exit_code, exact) = match attempt {
        Ok(Ok(r)) => r,
        Ok(Err(clean_error)) => {
            error = Some(clean_error);
            (Vec::new(), 1, false)
        }
        Err(_) => {
            violations.push("panic escaped the exploration".to_string());
            (Vec::new(), 1, false)
        }
    };
    drop(observer);

    // Exit-code contract.
    if ![0, 3, 130, 1].contains(&exit_code) {
        violations.push(format!(
            "exit code {exit_code} outside the 0/3/130/1 contract"
        ));
    }

    // Soundness: every reported point re-analyses fault-free to exactly
    // its reported throughput.
    for p in &front {
        match (harness.analyze)(&p.distribution) {
            Ok(t) if t == p.throughput => {}
            Ok(t) => violations.push(format!(
                "unsound point: γ = {} reported {} but analyses to {t}",
                p.distribution, p.throughput
            )),
            Err(e) => violations.push(format!(
                "point γ = {} does not re-analyse cleanly: {e}",
                p.distribution
            )),
        }
    }

    // Determinism: a schedule whose injections cannot perturb the
    // search must reproduce the fault-free front exactly.
    if exact && !perturbed_search(&plan) && front_sig(&front) != harness.reference {
        violations.push("unperturbed schedule diverged from the fault-free front".to_string());
    }

    check_trace(&trace_path, &mut violations);

    // Checkpoint recovery: whatever the faulted run published must load
    // (strictly or salvaged) and warm-start a fault-free run back to
    // the reference front.
    if ckpt_path.exists() {
        match Checkpoint::load_salvaged(&ckpt_path) {
            Err(e) => violations.push(format!("published checkpoint unrecoverable: {e}")),
            Ok((cp, _report)) if cp.fingerprint != harness.fingerprint => {
                violations.push("published checkpoint has a foreign fingerprint".to_string())
            }
            Ok((cp, _report)) => {
                let warm = Some(Arc::new(cp.warm_start_map()));
                let resumed = (harness.run)(None, warm, &CliObserver::quiet());
                match resumed {
                    Ok((points, 0, true)) if front_sig(&points) == harness.reference => {}
                    Ok((points, code, _)) => violations.push(format!(
                        "resume from the salvaged checkpoint diverged \
                         (exit {code}, {} points)",
                        points.len()
                    )),
                    Err(e) => violations.push(format!("resume failed: {e}")),
                }
            }
        }
    }

    let points = front.len();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&ckpt_path).ok();
    let mut tmp = ckpt_path.into_os_string();
    tmp.push(".tmp");
    std::fs::remove_file(PathBuf::from(tmp)).ok();

    SeedOutcome {
        seed,
        exit_code,
        points,
        injected: plan.total_injected(),
        error,
        violations,
    }
}

/// A finished exploration attempt: points, exit code, exactness, end
/// reason — or the cancellation cause (if any) and the driver error.
type Attempt<E> = Result<(Vec<ParetoPoint>, i32, bool, &'static str), (Option<CancelReason>, E)>;

/// Maps one exploration attempt to the CLI's observable outcome,
/// finishing the observer exactly as the real commands do.
fn settle<E: std::fmt::Display>(
    run: Attempt<E>,
    observer: &CliObserver,
) -> Result<(Vec<ParetoPoint>, i32, bool), String> {
    match run {
        Ok((points, code, exact, reason)) => {
            observer.finish(reason).ok();
            Ok((points, code, exact))
        }
        Err((Some(reason), e)) => {
            observer.finish(reason.name()).ok();
            if reason == CancelReason::Interrupt {
                // No result, but the conventional 130 still applies.
                return Ok((Vec::new(), 130, false));
            }
            Err(e.to_string())
        }
        Err((None, e)) => {
            observer.finish("error").ok();
            Err(e.to_string())
        }
    }
}

/// Builds the SDF harness: guided exploration, single-threaded for a
/// fully reproducible fault schedule, memory watchdog armed.
fn sdf_harness<'a>(graph: &'a SdfGraph, observed: ActorId) -> Result<Harness<'a>, String> {
    let fingerprint = fx_hash(&write_sdf_xml(graph));
    let options =
        move |faults: Option<Arc<FaultPlan>>, warm: Option<Arc<WarmStart>>| ExploreOptions {
            observed: Some(observed),
            threads: 1,
            cancel: Some(Arc::new(
                CancelToken::new().with_state_budget(CHAOS_STATE_BUDGET),
            )),
            warm_start: warm,
            fault_plan: faults,
            ..ExploreOptions::default()
        };
    let run = move |faults: Option<Arc<FaultPlan>>,
                    warm: Option<Arc<WarmStart>>,
                    observer: &CliObserver| {
        let opts = options(faults, warm);
        match explore_dependency_guided_observed(graph, &opts, observer) {
            Ok(r) => {
                let code = exit_code_for(&r.completeness);
                let reason = end_reason(&r.completeness);
                settle::<ExploreError>(
                    Ok((
                        r.pareto.points().to_vec(),
                        code,
                        r.completeness.truncated_by.is_none(),
                        reason,
                    )),
                    observer,
                )
            }
            Err(ExploreError::Cancelled { reason }) => settle(
                Err((Some(reason), ExploreError::Cancelled { reason })),
                observer,
            ),
            Err(e) => settle(Err((None, e)), observer),
        }
    };
    let reference = run(None, None, &CliObserver::quiet())?;
    if reference.1 != 0 {
        return Err(format!(
            "fault-free reference run is not exact (exit {})",
            reference.1
        ));
    }
    Ok(Harness {
        fingerprint,
        channels: graph.num_channels(),
        reference: front_sig(&reference.0),
        run: Box::new(run),
        analyze: Box::new(move |dist| {
            buffy_analysis::throughput(graph, dist, observed)
                .map(|r| r.throughput)
                .map_err(|e: AnalysisError| e.to_string())
        }),
    })
}

/// The CSDF counterpart of [`sdf_harness`].
fn csdf_harness<'a>(
    graph: &'a buffy_csdf::CsdfGraph,
    observed: ActorId,
) -> Result<Harness<'a>, String> {
    let fingerprint = fx_hash(&buffy_csdf::xml::write_csdf_xml(graph));
    let options = move |faults: Option<Arc<FaultPlan>>, warm: Option<Arc<WarmStart>>| {
        buffy_csdf::CsdfExploreOptions {
            observed: Some(observed),
            threads: 1,
            cancel: Some(Arc::new(
                CancelToken::new().with_state_budget(CHAOS_STATE_BUDGET),
            )),
            warm_start: warm,
            fault_plan: faults,
            ..buffy_csdf::CsdfExploreOptions::default()
        }
    };
    let run = move |faults: Option<Arc<FaultPlan>>,
                    warm: Option<Arc<WarmStart>>,
                    observer: &CliObserver| {
        let opts = options(faults, warm);
        match buffy_csdf::csdf_explore_observed(graph, &opts, observer) {
            Ok(r) => {
                let code = exit_code_for(&r.completeness);
                let reason = end_reason(&r.completeness);
                settle::<buffy_csdf::CsdfError>(
                    Ok((
                        r.pareto.points().to_vec(),
                        code,
                        r.completeness.truncated_by.is_none(),
                        reason,
                    )),
                    observer,
                )
            }
            Err(buffy_csdf::CsdfError::Analysis(AnalysisError::Cancelled { reason })) => settle(
                Err((
                    Some(reason),
                    buffy_csdf::CsdfError::Analysis(AnalysisError::Cancelled { reason }),
                )),
                observer,
            ),
            Err(e) => settle(Err((None, e)), observer),
        }
    };
    let reference = run(None, None, &CliObserver::quiet())?;
    if reference.1 != 0 {
        return Err(format!(
            "fault-free reference run is not exact (exit {})",
            reference.1
        ));
    }
    Ok(Harness {
        fingerprint,
        channels: graph.num_channels(),
        reference: front_sig(&reference.0),
        run: Box::new(run),
        analyze: Box::new(move |dist| {
            buffy_csdf::csdf_throughput(graph, dist, observed, buffy_csdf::CsdfLimits::default())
                .map(|r| r.throughput)
                .map_err(|e| e.to_string())
        }),
    })
}

fn w(out: Out<'_>, text: std::fmt::Arguments<'_>) -> Result<(), String> {
    out.write_fmt(text).map_err(|e| e.to_string())
}

/// Runs the chaos harness over the seed range and reports per-schedule
/// outcomes. Exit 0 when every schedule upheld every invariant, 1
/// otherwise.
pub fn chaos(parsed: &ParsedArgs, out: Out<'_>) -> Result<i32, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or("expected a graph file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let seeds = seed_range(parsed)?;

    let dir = std::env::temp_dir().join(format!("buffy-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    // The graphs live for the whole loop; the harness borrows them.
    let sdf;
    let csdf;
    let (harness, name, kind) = if is_csdf_document(&text) {
        csdf = buffy_csdf::xml::read_csdf_xml(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = csdf.default_observed_actor();
        (
            csdf_harness(&csdf, observed)?,
            csdf.name().to_string(),
            "csdf",
        )
    } else {
        sdf = read_sdf_xml(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let observed = sdf.default_observed_actor();
        (sdf_harness(&sdf, observed)?, sdf.name().to_string(), "sdf")
    };

    let json = parsed.has_flag("json");
    // Injected evaluation panics are intentional and contained; without a
    // filter the default hook would print dozens of backtraces over the
    // report. Anything else still reaches the previous hook.
    let previous = std::sync::Arc::new(std::panic::take_hook());
    {
        let previous = std::sync::Arc::clone(&previous);
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected evaluation failure"));
            if !injected {
                previous(info);
            }
        }));
    }
    let mut outcomes = Vec::new();
    for seed in seeds.clone() {
        outcomes.push(run_seed(&harness, seed, &dir));
    }
    drop(std::panic::take_hook());
    if let Ok(previous) = std::sync::Arc::try_unwrap(previous) {
        std::panic::set_hook(previous);
    }
    std::fs::remove_dir(&dir).ok();

    let failed = outcomes.iter().filter(|o| !o.violations.is_empty()).count();
    if json {
        let seeds_json: Vec<String> = outcomes
            .iter()
            .map(|o| {
                let v: Vec<String> = o
                    .violations
                    .iter()
                    .map(|m| format!("\"{}\"", crate::observe::json_escape(m)))
                    .collect();
                format!(
                    "{{\"seed\":{},\"exit_code\":{},\"points\":{},\"injected\":{},\"violations\":[{}]}}",
                    o.seed,
                    o.exit_code,
                    o.points,
                    o.injected,
                    v.join(",")
                )
            })
            .collect();
        w(
            out,
            format_args!(
                "{{\"graph\":\"{}\",\"kind\":\"{kind}\",\"schedules\":{},\"failed\":{failed},\"seeds\":[{}]}}\n",
                crate::observe::json_escape(&name),
                outcomes.len(),
                seeds_json.join(",")
            ),
        )?;
    } else {
        w(
            out,
            format_args!(
                "chaos: {name} ({kind}), seeds {}..{}\n",
                seeds.start, seeds.end
            ),
        )?;
        for o in &outcomes {
            let verdict = if o.violations.is_empty() {
                "ok"
            } else {
                "FAILED"
            };
            let cause = match &o.error {
                Some(e) => format!(" ({e})"),
                None => String::new(),
            };
            w(
                out,
                format_args!(
                    "seed {}: exit {}, {} points, {} faults injected — {verdict}{cause}\n",
                    o.seed, o.exit_code, o.points, o.injected
                ),
            )?;
            for v in &o.violations {
                w(out, format_args!("  violation: {v}\n"))?;
            }
        }
        w(
            out,
            format_args!(
                "chaos: {}/{} schedules upheld all invariants\n",
                outcomes.len() - failed,
                outcomes.len()
            ),
        )?;
    }
    Ok(if failed == 0 { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_parses_and_validates() {
        let parse = |argv: &[&str]| {
            let raw: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            crate::args::parse(&raw).unwrap()
        };
        assert_eq!(seed_range(&parse(&["chaos", "g.xml"])).unwrap(), 0..8);
        assert_eq!(
            seed_range(&parse(&["chaos", "g.xml", "--seed-range", "3..7"])).unwrap(),
            3..7
        );
        assert_eq!(
            seed_range(&parse(&["chaos", "g.xml", "--schedules", "32"])).unwrap(),
            0..32
        );
        assert!(seed_range(&parse(&["chaos", "g.xml", "--seed-range", "5..5"])).is_err());
        assert!(seed_range(&parse(&["chaos", "g.xml", "--seed-range", "x..y"])).is_err());
        assert!(seed_range(&parse(&["chaos", "g.xml", "--schedules", "0"])).is_err());
    }
}
