//! A small command-line flag parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Option values by name (without the leading `--`).
    pub options: HashMap<String, String>,
    /// Boolean flags present on the command line.
    pub flags: Vec<String>,
}

/// Option names that take a value; everything else starting with `--` is
/// treated as a boolean flag.
const VALUE_OPTIONS: &[&str] = &[
    "dist",
    "actor",
    "throughput",
    "quantum",
    "max-size",
    "threads",
    "horizon",
    "algorithm",
    "to",
    "seed",
    "actors",
    "channels",
    "max-rate",
    "max-exec",
    "max-repetition",
    "out",
    "trace-json",
    "timeout",
    "max-evals",
    "max-states",
    "max-memory-mb",
    "seed-range",
    "schedules",
    "checkpoint",
    "resume",
    "space-threshold",
    "metrics",
    "chrome-trace",
    "objectives",
    "export-csv",
    "export-dot",
    "serve",
    "serve-linger",
];

/// Boolean flags the commands understand; anything else starting with
/// `--` is rejected as unknown.
const KNOWN_FLAGS: &[&str] = &[
    "csv",
    "json",
    "deny-warnings",
    "force",
    "help",
    "no-static-prune",
    "no-warm-start",
    "progress",
];

/// Parses raw arguments.
///
/// # Errors
///
/// Returns a message when a value option misses its value or when an
/// option is not recognised at all.
pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if VALUE_OPTIONS.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} requires a value"))?;
                parsed.options.insert(name.to_string(), value.clone());
            } else if KNOWN_FLAGS.contains(&name) {
                parsed.flags.push(name.to_string());
            } else {
                return Err(format!("unknown option --{name}; try `buffy help`"));
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// The value of option `name`, parsed.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses a `--dist` value of the form `4,2,3`.
///
/// # Errors
///
/// Returns a message on malformed numbers.
pub fn parse_dist(value: &str) -> Result<Vec<u64>, String> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| format!("invalid capacity {part:?} in --dist"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let p = parse(&args(&["explore", "g.xml", "--quantum", "1/100", "--csv"])).unwrap();
        assert_eq!(p.positional, vec!["explore", "g.xml"]);
        assert_eq!(p.options.get("quantum").map(String::as_str), Some("1/100"));
        assert!(p.has_flag("csv"));
        assert!(!p.has_flag("json"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&args(&["--dist"])).is_err());
    }

    #[test]
    fn unknown_options_rejected() {
        let err = parse(&args(&["explore", "g.xml", "--maxx-states", "100"])).unwrap_err();
        assert!(err.contains("--maxx-states"), "{err}");
        assert!(parse(&args(&["--jsno"])).is_err());
        // Known flags and options still parse.
        assert!(parse(&args(&["check", "g.xml", "--json", "--deny-warnings"])).is_ok());
        assert!(parse(&args(&["--help"])).is_ok());
        let p = parse(&args(&["explore", "g.xml", "--no-static-prune"])).unwrap();
        assert!(p.has_flag("no-static-prune"));
    }

    #[test]
    fn observability_options_parse() {
        let p = parse(&args(&[
            "explore",
            "g.xml",
            "--progress",
            "--trace-json",
            "trace.jsonl",
            "--metrics",
            "metrics.prom",
            "--chrome-trace",
            "trace.json",
        ]))
        .unwrap();
        assert!(p.has_flag("progress"));
        assert_eq!(
            p.options.get("trace-json").map(String::as_str),
            Some("trace.jsonl")
        );
        assert_eq!(
            p.options.get("metrics").map(String::as_str),
            Some("metrics.prom")
        );
        assert_eq!(
            p.options.get("chrome-trace").map(String::as_str),
            Some("trace.json")
        );
        // Paths are required, and misspellings are rejected.
        assert!(parse(&args(&["--trace-json"])).is_err());
        assert!(parse(&args(&["--trace-jsonl", "x"])).is_err());
        assert!(parse(&args(&["--metrics"])).is_err());
        assert!(parse(&args(&["--chrome-trace"])).is_err());
    }

    #[test]
    fn serve_options_parse() {
        let p = parse(&args(&[
            "explore",
            "g.xml",
            "--serve",
            "127.0.0.1:0",
            "--serve-linger",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            p.options.get("serve").map(String::as_str),
            Some("127.0.0.1:0")
        );
        assert_eq!(p.options.get("serve-linger").map(String::as_str), Some("5"));
        // Both take values.
        assert!(parse(&args(&["--serve"])).is_err());
        assert!(parse(&args(&["--serve-linger"])).is_err());
    }

    #[test]
    fn resilience_options_parse() {
        let p = parse(&args(&[
            "explore",
            "g.xml",
            "--timeout",
            "1.5",
            "--max-evals",
            "100",
            "--checkpoint",
            "run.ckpt",
        ]))
        .unwrap();
        assert_eq!(p.get::<f64>("timeout").unwrap(), Some(1.5));
        assert_eq!(p.get::<u64>("max-evals").unwrap(), Some(100));
        let p = parse(&args(&[
            "explore",
            "g.xml",
            "--max-states",
            "5000",
            "--max-memory-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(p.get::<u64>("max-states").unwrap(), Some(5000));
        assert_eq!(p.get::<u64>("max-memory-mb").unwrap(), Some(64));
        let p = parse(&args(&["chaos", "g.xml", "--seed-range", "0..32"])).unwrap();
        assert_eq!(
            p.options.get("seed-range").map(String::as_str),
            Some("0..32")
        );
        let p = parse(&args(&["explore", "g.xml", "--resume", "run.ckpt"])).unwrap();
        assert_eq!(
            p.options.get("resume").map(String::as_str),
            Some("run.ckpt")
        );
        // All of them require a value.
        assert!(parse(&args(&["--timeout"])).is_err());
        assert!(parse(&args(&["--resume"])).is_err());
    }

    #[test]
    fn objective_options_parse() {
        let p = parse(&args(&[
            "explore",
            "g.xml",
            "--objectives",
            "storage,throughput,energy",
            "--export-csv",
            "front.csv",
            "--export-dot",
            "front.dot",
        ]))
        .unwrap();
        assert_eq!(
            p.options.get("objectives").map(String::as_str),
            Some("storage,throughput,energy")
        );
        assert_eq!(
            p.options.get("export-csv").map(String::as_str),
            Some("front.csv")
        );
        assert_eq!(
            p.options.get("export-dot").map(String::as_str),
            Some("front.dot")
        );
        // All three require a value.
        assert!(parse(&args(&["--objectives"])).is_err());
        assert!(parse(&args(&["--export-csv"])).is_err());
        assert!(parse(&args(&["--export-dot"])).is_err());
    }

    #[test]
    fn typed_access() {
        let p = parse(&args(&["--threads", "4"])).unwrap();
        assert_eq!(p.get::<usize>("threads").unwrap(), Some(4));
        assert_eq!(p.get::<usize>("horizon").unwrap(), None);
        let p = parse(&args(&["--threads", "x"])).unwrap();
        assert!(p.get::<usize>("threads").is_err());
    }

    #[test]
    fn dist_parsing() {
        assert_eq!(parse_dist("4,2").unwrap(), vec![4, 2]);
        assert_eq!(parse_dist(" 1 , 2 , 3 ").unwrap(), vec![1, 2, 3]);
        assert!(parse_dist("4,x").is_err());
    }
}
