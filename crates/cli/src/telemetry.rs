//! CLI wiring of the metrics/profiling recorder.
//!
//! `--metrics FILE` writes a Prometheus textfile snapshot, `--chrome-trace
//! FILE` a Chrome trace-event JSON (loadable in chrome://tracing or
//! Perfetto), and `--json` embeds a `telemetry` section in the
//! machine-readable report. `--serve` needs the recorder live for its
//! `/metrics` scrape endpoint. Any of the four installs a fresh global
//! [`Recorder`] for the duration of the command; without them the
//! instrumented hot paths pay only a relaxed load and a branch.

use crate::args::ParsedArgs;
use buffy_telemetry::{
    names, render_chrome_trace, render_prometheus, HistogramSnapshot, Recorder, Snapshot,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// The recorder slot is process-global; two concurrent commands in one
/// process (the test suite) would otherwise overwrite each other's
/// recorder mid-run. Real invocations run one command per process and
/// never contend.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// One command's telemetry scope: installs the recorder on construction
/// (when any consumer asked for it), uninstalls and exports on
/// [`finish`](TelemetrySession::finish) — or on drop, so error paths
/// never leave a stale recorder behind.
pub(crate) struct TelemetrySession {
    recorder: Option<Arc<Recorder>>,
    _guard: Option<MutexGuard<'static, ()>>,
    metrics: Option<PathBuf>,
    chrome: Option<PathBuf>,
}

impl TelemetrySession {
    /// Builds the session from `--metrics`, `--chrome-trace`, `--json`
    /// and `--serve`.
    pub(crate) fn from_options(parsed: &ParsedArgs) -> TelemetrySession {
        let metrics = parsed.options.get("metrics").map(PathBuf::from);
        let chrome = parsed.options.get("chrome-trace").map(PathBuf::from);
        let wanted = metrics.is_some()
            || chrome.is_some()
            || parsed.has_flag("json")
            || parsed.options.contains_key("serve");
        let mut guard = None;
        let recorder = wanted.then(|| {
            guard = Some(INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner()));
            let r = Arc::new(Recorder::new());
            buffy_telemetry::install(Arc::clone(&r));
            r
        });
        TelemetrySession {
            recorder,
            _guard: guard,
            metrics,
            chrome,
        }
    }

    /// The installed recorder, when any consumer asked for one. The
    /// observability server holds this `Arc` across
    /// [`finish`](TelemetrySession::finish): `/metrics` keeps serving the
    /// final values during the `--serve-linger` window even though the
    /// global slot has been uninstalled.
    pub(crate) fn recorder(&self) -> Option<Arc<Recorder>> {
        self.recorder.clone()
    }

    /// Uninstalls the recorder, writes the export files and returns the
    /// snapshot for the `--json` report (`None` when telemetry was never
    /// requested).
    ///
    /// # Errors
    ///
    /// Returns a message when an export file cannot be written.
    pub(crate) fn finish(mut self) -> Result<Option<Snapshot>, String> {
        let Some(recorder) = self.recorder.take() else {
            return Ok(None);
        };
        buffy_telemetry::uninstall();
        let snapshot = recorder.snapshot();
        if let Some(path) = &self.metrics {
            std::fs::write(path, render_prometheus(&snapshot))
                .map_err(|e| format!("cannot write metrics file {}: {e}", path.display()))?;
        }
        if let Some(path) = &self.chrome {
            std::fs::write(path, render_chrome_trace(&recorder.trace_events()))
                .map_err(|e| format!("cannot write Chrome trace {}: {e}", path.display()))?;
        }
        Ok(Some(snapshot))
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if self.recorder.take().is_some() {
            buffy_telemetry::uninstall();
        }
    }
}

/// Renders the `--json` `telemetry` section: evaluation-latency
/// percentiles plus the memo cache's per-shard hit/miss/occupancy.
pub(crate) fn telemetry_json(snapshot: &Snapshot) -> String {
    let latency = snapshot
        .histograms
        .get(names::EVAL_LATENCY_NS)
        .cloned()
        .unwrap_or_else(HistogramSnapshot::empty);
    let hits = Snapshot::family_values(&snapshot.counters, names::SHARD_HITS);
    let misses = Snapshot::family_values(&snapshot.counters, names::SHARD_MISSES);
    let entries = Snapshot::family_values(&snapshot.gauges, names::SHARD_ENTRIES);
    let value_of = |pairs: &[(&str, u64)], shard: &str| {
        pairs
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // BTreeMap order is lexicographic; shards are numbered, so re-sort.
    let mut shards: Vec<(u64, String)> = hits
        .iter()
        .map(|(shard, h)| {
            let index: u64 = shard.parse().unwrap_or(0);
            let json = format!(
                "{{\"shard\":{index},\"hits\":{h},\"misses\":{},\"entries\":{}}}",
                value_of(&misses, shard),
                value_of(&entries, shard)
            );
            (index, json)
        })
        .collect();
    shards.sort_by_key(|(index, _)| *index);
    let shards: Vec<String> = shards.into_iter().map(|(_, json)| json).collect();
    format!(
        "{{\"eval_latency_ns\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}},\"memo_shards\":[{}]}}",
        latency.count,
        latency.mean(),
        latency.p50(),
        latency.p90(),
        latency.p99(),
        shards.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_telemetry::labeled;

    #[test]
    fn telemetry_json_renders_latency_and_shards() {
        let r = Recorder::new();
        let h = r.histogram(names::EVAL_LATENCY_NS, "latency");
        h.record(1000);
        h.record(2000);
        r.counter(&labeled(names::SHARD_HITS, "shard", 0), "hits")
            .add(3);
        r.counter(&labeled(names::SHARD_HITS, "shard", 10), "hits")
            .add(1);
        r.counter(&labeled(names::SHARD_MISSES, "shard", 0), "misses")
            .add(2);
        r.gauge(&labeled(names::SHARD_ENTRIES, "shard", 0), "entries")
            .set(5);
        let json = telemetry_json(&r.snapshot());
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        // Shards are ordered numerically (0 before 10), absent families
        // default to zero.
        let pos0 = json.find("\"shard\":0,").unwrap();
        let pos10 = json.find("\"shard\":10,").unwrap();
        assert!(pos0 < pos10, "{json}");
        assert!(
            json.contains("{\"shard\":0,\"hits\":3,\"misses\":2,\"entries\":5}"),
            "{json}"
        );
        assert!(
            json.contains("{\"shard\":10,\"hits\":1,\"misses\":0,\"entries\":0}"),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let json = telemetry_json(&Snapshot::default());
        assert!(json.contains("\"count\":0"), "{json}");
        assert!(json.contains("\"memo_shards\":[]"), "{json}");
    }
}
